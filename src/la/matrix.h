// Dense row-major float matrix — the storage type for embeddings,
// activations, and gradients throughout the library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pup::la {

/// Dense rows x cols matrix of float, row-major, value-semantic.
///
/// A (n, 1) matrix doubles as a column vector; free kernels in kernels.h
/// operate on Matrix. Element access is bounds-checked in debug builds.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from explicit row-major data; data.size() must equal rows*cols.
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    PUP_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  /// Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Matrix with i.i.d. U(lo, hi) entries.
  static Matrix Uniform(size_t rows, size_t cols, float lo, float hi,
                        Rng* rng);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    PUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    PUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r.
  float* Row(size_t r) {
    PUP_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    PUP_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry to v.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets every entry to zero.
  void Zero() { Fill(0.0f); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Human-readable dump (small matrices; for tests and debugging).
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace pup::la
