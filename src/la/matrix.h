// Dense row-major float matrix — the storage type for embeddings,
// activations, and gradients throughout the library.
//
// Layout contract (see docs/simd.md): the buffer is 64-byte aligned and
// rows are padded to a 64-byte (16-float) leading dimension, so every row
// of a multi-column matrix starts on a cache-line/vector boundary and the
// SIMD kernels run full aligned lanes with no tail handling. Column
// vectors (cols <= 1) stay contiguous — their "rows" are single floats
// and padding them 16x would waste memory and scatter the values the
// reduction kernels want contiguous. The pad lanes hold unspecified
// bytes: kernels may read and overwrite them freely, but nothing ever
// *consumes* a pad value (serialization, reductions, comparisons, and
// the finite-checks all walk the logical extent only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pup::la {

/// Monotonic counters of float-buffer allocations made by Matrix.
/// Snapshot before and after a region and take deltas; used to verify the
/// zero-allocation steady state of the training step (see TapeArena).
struct AllocStats {
  uint64_t count = 0;  ///< Buffer allocations (fresh or capacity growth).
  uint64_t bytes = 0;  ///< Bytes those allocations requested.
};

/// Current process-wide Matrix allocation counters (relaxed atomics; safe
/// to read concurrently, values are monotonic).
AllocStats MatrixAllocStats();

namespace internal {
/// Records one Matrix buffer allocation of `num_floats` floats.
void RecordMatrixAlloc(size_t num_floats);

/// Minimal std allocator returning 64-byte-aligned buffers, so vector
/// loads/stores on row starts can use aligned forms.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, size_t) noexcept { ::operator delete(p, kAlign); }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};
}  // namespace internal

/// Dense rows x cols matrix of float, row-major with a padded leading
/// dimension, value-semantic.
///
/// A (n, 1) matrix doubles as a column vector; free kernels in kernels.h
/// operate on Matrix. Element access is bounds-checked in debug builds.
class Matrix {
 public:
  /// Floats per alignment unit (64 bytes): the row-padding quantum and
  /// the widest supported vector lane (AVX-512).
  static constexpr size_t kAlignFloats = 16;

  /// Leading dimension for a logical column count: column vectors stay
  /// contiguous, wider matrices pad each row to a 64-byte multiple.
  static constexpr size_t StrideFor(size_t cols) {
    return cols <= 1 ? cols : (cols + kAlignFloats - 1) / kAlignFloats *
                                  kAlignFloats;
  }

  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0), stride_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        stride_(StrideFor(cols)),
        data_(PaddedExtent(rows, stride_), 0.0f) {
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
  }

  /// Matrix filled with `fill` (pad lanes included; they are never read).
  Matrix(size_t rows, size_t cols, float fill)
      : rows_(rows),
        cols_(cols),
        stride_(StrideFor(cols)),
        data_(PaddedExtent(rows, stride_), fill) {
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
  }

  /// Builds from explicit row-major data; data.size() must equal
  /// rows*cols. The dense rows are repacked into the padded layout.
  Matrix(size_t rows, size_t cols, const std::vector<float>& data)
      : rows_(rows),
        cols_(cols),
        stride_(StrideFor(cols)),
        data_(PaddedExtent(rows, stride_), 0.0f) {
    PUP_CHECK_EQ(data.size(), rows_ * cols_);
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
    for (size_t r = 0; r < rows_; ++r) {
      for (size_t c = 0; c < cols_; ++c) {
        data_[r * stride_ + c] = data[r * cols_ + c];
      }
    }
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        stride_(other.stride_),
        data_(other.data_) {
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      const bool grows = other.data_.size() > data_.capacity();
      rows_ = other.rows_;
      cols_ = other.cols_;
      stride_ = other.stride_;
      data_ = other.data_;
      if (grows) internal::RecordMatrixAlloc(data_.size());
    }
    return *this;
  }
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Matrix with i.i.d. U(lo, hi) entries.
  static Matrix Uniform(size_t rows, size_t cols, float lo, float hi,
                        Rng* rng);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Logical element count (rows * cols), excluding pad lanes.
  size_t size() const { return rows_ * cols_; }
  /// Leading dimension in floats: Row(r+1) - Row(r).
  size_t stride() const { return stride_; }
  /// Backing-buffer extent in floats: rows*stride rounded up to a full
  /// 16-float lane. Elementwise kernels iterate this flat extent (pads
  /// included) so every load/store is a full aligned vector.
  size_t padded_size() const { return data_.size(); }
  /// True when the logical elements form one dense run of size() floats
  /// (column vectors, 16-multiple widths, or degenerate shapes).
  bool IsContiguous() const { return stride_ == cols_ || rows_ <= 1; }
  bool empty() const { return rows_ * cols_ == 0; }

  float& operator()(size_t r, size_t c) {
    PUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  float operator()(size_t r, size_t c) const {
    PUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// Value at logical flat (row-major) index i — element (i/cols, i%cols).
  /// For tests and diagnostics that think in flat indices; kernels use
  /// Row()/stride-aware pointers.
  float& FlatAt(size_t i) {
    PUP_DCHECK(cols_ > 0 && i < rows_ * cols_);
    return data_[(i / cols_) * stride_ + i % cols_];
  }
  float FlatAt(size_t i) const {
    PUP_DCHECK(cols_ > 0 && i < rows_ * cols_);
    return data_[(i / cols_) * stride_ + i % cols_];
  }

  /// Pointer to the start of row r (64-byte aligned when cols > 1).
  float* Row(size_t r) {
    PUP_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }
  const float* Row(size_t r) const {
    PUP_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry (pads included) to v.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets every entry to zero.
  void Zero() { Fill(0.0f); }

  /// Reshapes to rows x cols without clearing existing entries; only
  /// growth beyond the current element count is zero-filled (vector
  /// semantics). Capacity is retained, so repeatedly resizing to shapes
  /// within the high-water mark performs no allocation — the backbone of
  /// the per-step buffer reuse in the autograd arena (see
  /// docs/architecture.md "Memory model"). Callers must overwrite the
  /// retained prefix; every kernel in kernels.h does. Pad lanes are
  /// unspecified after a resize.
  void ResizeNoZero(size_t rows, size_t cols) {
    const size_t stride = StrideFor(cols);
    const size_t n = PaddedExtent(rows, stride);
    if (n > data_.capacity()) internal::RecordMatrixAlloc(n);
    rows_ = rows;
    cols_ = cols;
    stride_ = stride;
    // NOLINTNEXTLINE(pup-hot-transitive): capacity-retaining — a steady-state no-op; real growth is counted above.
    data_.resize(n);
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Aborts (via PUP_CHECK machinery) if any entry is NaN or ±Inf,
  /// reporting `what`, the shape, the first bad flat index, and NaN/Inf
  /// counts. The clean path is a branch-free scan with no allocation; the
  /// trainer calls this on the loss every step (see ag::NumericGuard for
  /// the op-level tape scan).
  void AssertFinite(const char* what) const;

  /// Human-readable dump (small matrices; for tests and debugging).
  std::string ToString() const;

 private:
  /// Buffer extent: rows*stride rounded up to a whole 16-float lane so
  /// flat elementwise traversal never needs a tail.
  static constexpr size_t PaddedExtent(size_t rows, size_t stride) {
    const size_t n = rows * stride;
    return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  size_t rows_;
  size_t cols_;
  size_t stride_;
  std::vector<float, internal::AlignedAllocator<float>> data_;
};

}  // namespace pup::la
