// Dense row-major float matrix — the storage type for embeddings,
// activations, and gradients throughout the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pup::la {

/// Monotonic counters of float-buffer allocations made by Matrix.
/// Snapshot before and after a region and take deltas; used to verify the
/// zero-allocation steady state of the training step (see TapeArena).
struct AllocStats {
  uint64_t count = 0;  ///< Buffer allocations (fresh or capacity growth).
  uint64_t bytes = 0;  ///< Bytes those allocations requested.
};

/// Current process-wide Matrix allocation counters (relaxed atomics; safe
/// to read concurrently, values are monotonic).
AllocStats MatrixAllocStats();

namespace internal {
/// Records one Matrix buffer allocation of `num_floats` floats.
void RecordMatrixAlloc(size_t num_floats);
}  // namespace internal

/// Dense rows x cols matrix of float, row-major, value-semantic.
///
/// A (n, 1) matrix doubles as a column vector; free kernels in kernels.h
/// operate on Matrix. Element access is bounds-checked in debug builds.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
  }

  /// Matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
  }

  /// Builds from explicit row-major data; data.size() must equal rows*cols.
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    PUP_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    if (!data_.empty()) internal::RecordMatrixAlloc(data_.size());
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      const bool grows = other.data_.size() > data_.capacity();
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
      if (grows) internal::RecordMatrixAlloc(data_.size());
    }
    return *this;
  }
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Matrix with i.i.d. U(lo, hi) entries.
  static Matrix Uniform(size_t rows, size_t cols, float lo, float hi,
                        Rng* rng);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    PUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    PUP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r.
  float* Row(size_t r) {
    PUP_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    PUP_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry to v.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets every entry to zero.
  void Zero() { Fill(0.0f); }

  /// Reshapes to rows x cols without clearing existing entries; only
  /// growth beyond the current element count is zero-filled (vector
  /// semantics). Capacity is retained, so repeatedly resizing to shapes
  /// within the high-water mark performs no allocation — the backbone of
  /// the per-step buffer reuse in the autograd arena (see
  /// docs/architecture.md "Memory model"). Callers must overwrite the
  /// retained prefix; every kernel in kernels.h does.
  void ResizeNoZero(size_t rows, size_t cols) {
    const size_t n = rows * cols;
    if (n > data_.capacity()) internal::RecordMatrixAlloc(n);
    rows_ = rows;
    cols_ = cols;
    data_.resize(n);
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Aborts (via PUP_CHECK machinery) if any entry is NaN or ±Inf,
  /// reporting `what`, the shape, the first bad flat index, and NaN/Inf
  /// counts. The clean path is a branch-free scan with no allocation; the
  /// trainer calls this on the loss every step (see ag::NumericGuard for
  /// the op-level tape scan).
  void AssertFinite(const char* what) const;

  /// Human-readable dump (small matrices; for tests and debugging).
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace pup::la
