#include "la/io.h"
#include <cstring>

#include <cstdint>
#include <cstdio>
#include <memory>

namespace pup::la {
namespace {

constexpr char kMagic[4] = {'P', 'U', 'P', 'M'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

// Serialization is dense row-major over the LOGICAL elements only — the
// padded leading dimension (matrix.h) is an in-memory layout detail, so
// the byte format is identical whatever the stride and stays compatible
// with pre-padding checkpoints/files.
void AppendMatrixBytes(const Matrix& m, std::string* out) {
  uint64_t rows = m.rows(), cols = m.cols();
  out->append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  for (size_t r = 0; r < m.rows(); ++r) {
    out->append(reinterpret_cast<const char*>(m.Row(r)),
                m.cols() * sizeof(float));
  }
}

Result<Matrix> ParseMatrixBytes(const std::string& buf, size_t* offset) {
  uint64_t rows = 0, cols = 0;
  if (*offset + 2 * sizeof(uint64_t) > buf.size()) {
    return Status::OutOfRange("matrix header past end of buffer");
  }
  std::memcpy(&rows, buf.data() + *offset, sizeof(rows));
  std::memcpy(&cols, buf.data() + *offset + sizeof(rows), sizeof(cols));
  size_t pos = *offset + 2 * sizeof(uint64_t);
  constexpr uint64_t kMaxElements = 1ull << 32;
  if (rows * cols > kMaxElements) {
    return Status::InvalidArgument("matrix too large in serialized header");
  }
  const size_t bytes = static_cast<size_t>(rows * cols) * sizeof(float);
  if (pos + bytes > buf.size()) {
    return Status::OutOfRange("matrix data past end of buffer (truncated?)");
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  const size_t row_bytes = m.cols() * sizeof(float);
  for (size_t r = 0; r < m.rows(); ++r) {
    std::memcpy(m.Row(r), buf.data() + pos + r * row_bytes, row_bytes);
  }
  *offset = pos + bytes;
  return m;
}

Status WriteMatrix(const Matrix& m, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  uint64_t rows = m.rows(), cols = m.cols();
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&rows, sizeof(rows), 1, f.get()) != 1 ||
      std::fwrite(&cols, sizeof(cols), 1, f.get()) != 1) {
    return Status::IOError("header write failed: " + path);
  }
  for (size_t r = 0; r < m.rows(); ++r) {
    if (std::fwrite(m.Row(r), sizeof(float), m.cols(), f.get()) != m.cols()) {
      return Status::IOError("data write failed: " + path);
    }
  }
  return Status::OK();
}

Result<Matrix> ReadMatrix(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint64_t rows = 0, cols = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
      std::fread(&cols, sizeof(cols), 1, f.get()) != 1) {
    return Status::IOError("header read failed: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a PUPM matrix file: " + path);
  }
  // Guard against absurd headers before allocating.
  constexpr uint64_t kMaxElements = 1ull << 32;
  if (rows * cols > kMaxElements) {
    return Status::InvalidArgument("matrix too large in header: " + path);
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (size_t r = 0; r < m.rows(); ++r) {
    if (std::fread(m.Row(r), sizeof(float), m.cols(), f.get()) != m.cols()) {
      return Status::IOError("data read failed (truncated?): " + path);
    }
  }
  return m;
}

}  // namespace pup::la
