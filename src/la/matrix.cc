#include "la/matrix.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "la/kernels.h"

namespace pup::la {
namespace {

// Relaxed atomics: the counters are monotonic telemetry, not a
// synchronization mechanism; concurrent kernel threads may bump them.
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

}  // namespace

AllocStats MatrixAllocStats() {
  AllocStats s;
  s.count = g_alloc_count.load(std::memory_order_relaxed);
  s.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return s;
}

namespace internal {

void RecordMatrixAlloc(size_t num_floats) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(num_floats * sizeof(float),
                          std::memory_order_relaxed);
}

}  // namespace internal

// The random fills walk the logical elements in row-major order — the
// same draw-to-element mapping as a dense buffer — so initialization is
// independent of the padded leading dimension.
Matrix Matrix::Gaussian(size_t rows, size_t cols, float stddev, Rng* rng) {
  PUP_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng->NextGaussian(0.0, stddev));
    }
  }
  return m;
}

Matrix Matrix::Uniform(size_t rows, size_t cols, float lo, float hi,
                       Rng* rng) {
  PUP_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng->NextUniform(lo, hi));
    }
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

void Matrix::AssertFinite(const char* what) const {
  if (AllFinite(*this)) return;  // Branch-free fast path; no allocation.
  const NonFiniteCounts counts = CountNonFinite(*this);
  char msg[256];
  std::snprintf(msg, sizeof(msg),
                "%s (%zux%zu) is not finite: %zu NaN, %zu Inf, first at "
                "flat index %zu (row %zu, col %zu)",
                what, rows_, cols_, counts.nans, counts.infs,
                counts.first_index,
                cols_ == 0 ? 0 : counts.first_index / cols_,
                cols_ == 0 ? 0 : counts.first_index % cols_);
  ::pup::internal::CheckFailed(__FILE__, __LINE__, "Matrix::AssertFinite",
                               msg);
}

std::string Matrix::ToString() const {
  std::ostringstream out;
  out << "Matrix(" << rows_ << "x" << cols_ << ")[\n";
  for (size_t r = 0; r < rows_; ++r) {
    out << "  ";
    for (size_t c = 0; c < cols_; ++c) {
      out << (*this)(r, c) << (c + 1 < cols_ ? ", " : "");
    }
    out << "\n";
  }
  out << "]";
  return out.str();
}

}  // namespace pup::la
