#include "la/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/registry.h"

namespace pup::la {
namespace {

// Resize without zeroing; every kernel below either overwrites each entry
// or explicitly initializes the rows it owns inside its parallel region.
// ResizeNoZero retains the buffer's capacity, so a recycled output matrix
// (tape arena / workspace cache) reaches steady state with no allocation.
void EnsureShapeNoZero(size_t rows, size_t cols, Matrix* out) {
  if (out->rows() != rows || out->cols() != cols) {
    out->ResizeNoZero(rows, cols);
  }
}

// Minimum scalar operations per ParallelFor chunk; keeps scheduling
// overhead well under the cost of the work itself.
constexpr size_t kMinWorkPerChunk = size_t{1} << 14;

// Rows per chunk for a kernel whose per-row cost is `row_cost` scalar ops.
size_t RowGrain(size_t row_cost) {
  return std::max<size_t>(1, kMinWorkPerChunk / std::max<size_t>(1, row_cost));
}

// Order-stable chunked reduction. With a single-thread pool this is the
// historical serial loop (one accumulator, bitwise-identical results);
// with more threads, fixed grain-sized chunks are reduced independently
// and combined in chunk order, so the result is deterministic for any
// pool size > 1 and within reduction-order tolerance of serial.
template <typename ChunkFn>
double ChunkedReduce(size_t n, const ChunkFn& chunk_sum) {
  constexpr size_t kGrain = kMinWorkPerChunk;
  if (n <= kGrain || ThreadPool::Global().num_threads() <= 1) {
    return chunk_sum(size_t{0}, n);
  }
  const size_t num_chunks = (n + kGrain - 1) / kGrain;
  std::vector<double> partial(num_chunks, 0.0);
  ParallelFor(0, n, kGrain,
              [&](size_t lo, size_t hi) { partial[lo / kGrain] = chunk_sum(lo, hi); });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

}  // namespace

// PUP_HOT
void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_OBS_COUNT("la/gemm", 1);
  PUP_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  EnsureShapeNoZero(m, n, out);
  // ikj loop order: streams through b and out rows contiguously. Each
  // chunk owns a disjoint block of out rows, initialized once here (not
  // pre-zeroed by the resize) and accumulated branch-free so the inner
  // loop vectorizes.
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a.Row(i);
      float* orow = out->Row(i);
      std::fill(orow, orow + n, 0.0f);
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b.Row(p);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

// PUP_HOT
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_OBS_COUNT("la/gemm_ta", 1);
  PUP_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  EnsureShapeNoZero(m, n, out);
  // out(i,j) = Σ_p a(p,i)·b(p,j); p stays the innermost accumulation
  // order so results match the historical p-outer loop bitwise.
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* orow = out->Row(i);
      std::fill(orow, orow + n, 0.0f);
      for (size_t p = 0; p < k; ++p) {
        const float av = a(p, i);
        const float* brow = b.Row(p);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

// PUP_HOT
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_OBS_COUNT("la/gemm_tb", 1);
  PUP_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  EnsureShapeNoZero(m, n, out);
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a.Row(i);
      float* orow = out->Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.Row(j);
        float acc = 0.0f;
        for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        orow[j] = acc;
      }
    }
  });
}

// PUP_HOT
void Spmm(const CsrMatrix& sparse, const Matrix& dense, Matrix* out) {
  PUP_OBS_COUNT("la/spmm", 1);
  PUP_CHECK_EQ(sparse.cols(), dense.rows());
  const size_t m = sparse.rows(), n = dense.cols();
  EnsureShapeNoZero(m, n, out);
  const auto& row_ptr = sparse.row_ptr();
  const auto& col_idx = sparse.col_idx();
  const auto& values = sparse.values();
  // Average row cost; individual rows vary but chunks amortize.
  const size_t row_cost = m == 0 ? 0 : (sparse.nnz() * n) / m;
  ParallelFor(0, m, RowGrain(row_cost), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* orow = out->Row(i);
      std::fill(orow, orow + n, 0.0f);
      for (uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const float v = values[k];
        if (v == 0.0f) continue;  // Explicit zeros are common after masking.
        const float* drow = dense.Row(col_idx[k]);
        for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
      }
    }
  });
}

// PUP_HOT
void Axpy(float alpha, const Matrix& x, Matrix* out) {
  PUP_CHECK(x.SameShape(*out));
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] += alpha * xd[i];
  });
}

// PUP_HOT
void Add(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  const float* yd = y.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = xd[i] + yd[i];
  });
}

// PUP_HOT
void Sub(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  const float* yd = y.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = xd[i] - yd[i];
  });
}

// PUP_HOT
void Mul(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  const float* yd = y.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = xd[i] * yd[i];
  });
}

// PUP_HOT
void Scale(float alpha, const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = alpha * xd[i];
  });
}

// PUP_HOT
void Tanh(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  float* od = out->data();
  // tanh costs far more than one scalar op per element; use a small grain.
  ParallelFor(0, x.size(), kMinWorkPerChunk / 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = std::tanh(xd[i]);
  });
}

// PUP_HOT
void Sigmoid(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk / 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float v = xd[i];
      // Stable: never exponentiate a positive argument.
      od[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                        : std::exp(v) / (1.0f + std::exp(v));
    }
  });
}

// PUP_HOT
void LeakyRelu(const Matrix& x, float slope, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float v = xd[i];
      od[i] = v > 0.0f ? v : slope * v;
    }
  });
}

// PUP_HOT
void GatherRows(const Matrix& table, const std::vector<uint32_t>& idx,
                Matrix* out) {
  PUP_OBS_COUNT("la/gather_rows", 1);
  EnsureShapeNoZero(idx.size(), table.cols(), out);
  const size_t cols = table.cols();
  ParallelFor(0, idx.size(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      PUP_DCHECK(idx[i] < table.rows());
      const float* src = table.Row(idx[i]);
      std::copy(src, src + cols, out->Row(i));
    }
  });
}

// PUP_HOT
void GatherRowsAdd(const Matrix& table_a, const std::vector<uint32_t>& idx_a,
                   const Matrix& table_b, const std::vector<uint32_t>& idx_b,
                   Matrix* out) {
  PUP_OBS_COUNT("la/gather_rows_add", 1);
  PUP_CHECK_EQ(idx_a.size(), idx_b.size());
  PUP_CHECK_EQ(table_a.cols(), table_b.cols());
  const size_t cols = table_a.cols();
  EnsureShapeNoZero(idx_a.size(), cols, out);
  ParallelFor(0, idx_a.size(), RowGrain(2 * cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      PUP_DCHECK(idx_a[i] < table_a.rows() && idx_b[i] < table_b.rows());
      const float* ra = table_a.Row(idx_a[i]);
      const float* rb = table_b.Row(idx_b[i]);
      float* dst = out->Row(i);
      for (size_t j = 0; j < cols; ++j) dst[j] = ra[j] + rb[j];
    }
  });
}

// PUP_HOT
void ScatterAddRows(const Matrix& src, const std::vector<uint32_t>& idx,
                    Matrix* table) {
  PUP_OBS_COUNT("la/scatter_add_rows", 1);
  PUP_CHECK_EQ(src.rows(), idx.size());
  PUP_CHECK_EQ(src.cols(), table->cols());
  const size_t d = src.cols();
  const size_t shards = ThreadPool::Global().num_threads();
  if (shards <= 1 || idx.size() * d < 2 * kMinWorkPerChunk) {
    for (size_t i = 0; i < idx.size(); ++i) {
      PUP_DCHECK(idx[i] < table->rows());
      const float* s = src.Row(i);
      float* dst = table->Row(idx[i]);
      for (size_t j = 0; j < d; ++j) dst[j] += s[j];
    }
    return;
  }
  // Deterministic sharding: shard s owns destination rows with
  // idx % shards == s, so shards touch disjoint table rows and each
  // destination row accumulates its contributions in ascending i — the
  // exact serial order. Results are bitwise-identical to the serial loop
  // for any shard count; duplicates in idx are handled by construction.
  // One shard per chunk: shards are already sized to the pool, so any
  // coarser grain would idle workers.
  constexpr size_t kOneShardPerChunk = 1;
  ParallelFor(0, shards, kOneShardPerChunk, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      for (size_t i = 0; i < idx.size(); ++i) {
        if (idx[i] % shards != s) continue;
        PUP_DCHECK(idx[i] < table->rows());
        const float* src_row = src.Row(i);
        float* dst = table->Row(idx[i]);
        for (size_t j = 0; j < d; ++j) dst[j] += src_row[j];
      }
    }
  });
}

// PUP_HOT
void RowDot(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_OBS_COUNT("la/row_dot", 1);
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), 1, out);
  const size_t cols = x.cols();
  ParallelFor(0, x.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* xr = x.Row(i);
      const float* yr = y.Row(i);
      float acc = 0.0f;
      for (size_t j = 0; j < cols; ++j) acc += xr[j] * yr[j];
      (*out)(i, 0) = acc;
    }
  });
}

// PUP_HOT
void RowDotDiff(const Matrix& x, const Matrix& a, const Matrix& b,
                Matrix* out) {
  PUP_OBS_COUNT("la/row_dot_diff", 1);
  PUP_CHECK(x.SameShape(a));
  PUP_CHECK(x.SameShape(b));
  EnsureShapeNoZero(x.rows(), 1, out);
  const size_t cols = x.cols();
  // Two independent row-dot accumulators per row, each in element order —
  // bitwise-identical to RowDot(x, b) − RowDot(x, a) at any thread count.
  ParallelFor(0, x.rows(), RowGrain(2 * cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* xr = x.Row(i);
      const float* ar = a.Row(i);
      const float* br = b.Row(i);
      float acc_a = 0.0f;
      for (size_t j = 0; j < cols; ++j) acc_a += xr[j] * ar[j];
      float acc_b = 0.0f;
      for (size_t j = 0; j < cols; ++j) acc_b += xr[j] * br[j];
      (*out)(i, 0) = acc_b - acc_a;
    }
  });
}

// PUP_HOT
void RowSum(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), 1, out);
  const size_t cols = x.cols();
  ParallelFor(0, x.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* xr = x.Row(i);
      float acc = 0.0f;
      for (size_t j = 0; j < cols; ++j) acc += xr[j];
      (*out)(i, 0) = acc;
    }
  });
}

// PUP_HOT
void RowScale(const Matrix& x, const Matrix& s, Matrix* out) {
  PUP_CHECK_EQ(s.rows(), x.rows());
  PUP_CHECK_EQ(s.cols(), 1u);
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const size_t cols = x.cols();
  ParallelFor(0, x.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float f = s(i, 0);
      const float* xr = x.Row(i);
      float* orow = out->Row(i);
      for (size_t j = 0; j < cols; ++j) orow[j] = xr[j] * f;
    }
  });
}

double Sum(const Matrix& x) {
  const float* xd = x.data();
  return ChunkedReduce(x.size(), [xd](size_t lo, size_t hi) {
    double acc = 0.0;
    for (size_t i = lo; i < hi; ++i) acc += xd[i];
    return acc;
  });
}

double SquaredNorm(const Matrix& x) {
  const float* xd = x.data();
  return ChunkedReduce(x.size(), [xd](size_t lo, size_t hi) {
    double acc = 0.0;
    for (size_t i = lo; i < hi; ++i) {
      acc += static_cast<double>(xd[i]) * xd[i];
    }
    return acc;
  });
}

double Dot(const Matrix& x, const Matrix& y) {
  PUP_CHECK(x.SameShape(y));
  const float* xd = x.data();
  const float* yd = y.data();
  return ChunkedReduce(x.size(), [xd, yd](size_t lo, size_t hi) {
    double acc = 0.0;
    for (size_t i = lo; i < hi; ++i) {
      acc += static_cast<double>(xd[i]) * yd[i];
    }
    return acc;
  });
}

float MaxAbs(const Matrix& x) {
  // max is exactly associative, so the chunked combine is bitwise-stable
  // for every thread count.
  const size_t n = x.size();
  const float* xd = x.data();
  constexpr size_t kGrain = kMinWorkPerChunk;
  auto chunk_max = [xd](size_t lo, size_t hi) {
    float m = 0.0f;
    for (size_t i = lo; i < hi; ++i) m = std::max(m, std::abs(xd[i]));
    return m;
  };
  if (n <= kGrain || ThreadPool::Global().num_threads() <= 1) {
    return chunk_max(0, n);
  }
  const size_t num_chunks = (n + kGrain - 1) / kGrain;
  std::vector<float> partial(num_chunks, 0.0f);
  ParallelFor(0, n, kGrain, [&](size_t lo, size_t hi) {
    partial[lo / kGrain] = chunk_max(lo, hi);
  });
  float m = 0.0f;
  for (float p : partial) m = std::max(m, p);
  return m;
}

// PUP_HOT
void Gemv(const Matrix& a, const Matrix& x, Matrix* out) {
  PUP_OBS_COUNT("la/gemv", 1);
  PUP_CHECK_EQ(x.cols(), 1u);
  PUP_CHECK_EQ(a.cols(), x.rows());
  EnsureShapeNoZero(a.rows(), 1, out);
  const size_t cols = a.cols();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a.Row(i);
      float acc = 0.0f;
      for (size_t j = 0; j < cols; ++j) acc += arow[j] * x(j, 0);
      (*out)(i, 0) = acc;
    }
  });
}

// PUP_HOT: runs inside every guarded training step; must not allocate.
bool AllFinite(const Matrix& x) {
  const float* xd = x.data();
  const size_t n = x.size();
  // A float is non-finite iff its exponent field is all ones; masking the
  // exponent and adding one exponent ulp carries into the sign bit exactly
  // for NaN/Inf, so OR-accumulating the sums leaves the verdict in the
  // sign bit. The integer OR reduction is associative (unlike an FP add
  // chain), so the compiler can unroll/vectorize it; the blocking bounds
  // how far we scan past the first bad entry. Branch-free per element and
  // serial: the scan is memory-bound and the guard's callers already sit
  // inside per-step parallel regions.
  constexpr size_t kBlock = size_t{1} << 12;
  constexpr uint32_t kExpMask = 0x7f800000u;
  constexpr uint32_t kExpUlp = 0x00800000u;
  for (size_t lo = 0; lo < n; lo += kBlock) {
    const size_t hi = std::min(n, lo + kBlock);
    // Four independent accumulators: the OR chains interleave instead of
    // serializing at one element per cycle.
    uint32_t lanes[4] = {0, 0, 0, 0};
    size_t i = lo;
    for (; i + 4 <= hi; i += 4) {
      uint32_t bits[4];
      std::memcpy(bits, &xd[i], sizeof(bits));
      lanes[0] |= (bits[0] & kExpMask) + kExpUlp;
      lanes[1] |= (bits[1] & kExpMask) + kExpUlp;
      lanes[2] |= (bits[2] & kExpMask) + kExpUlp;
      lanes[3] |= (bits[3] & kExpMask) + kExpUlp;
    }
    for (; i < hi; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &xd[i], sizeof(bits));
      lanes[0] |= (bits & kExpMask) + kExpUlp;
    }
    const uint32_t acc = lanes[0] | lanes[1] | lanes[2] | lanes[3];
    if ((acc & 0x80000000u) != 0) return false;
  }
  return true;
}

NonFiniteCounts CountNonFinite(const Matrix& x) {
  NonFiniteCounts counts;
  const float* xd = x.data();
  const size_t n = x.size();
  counts.first_index = n;
  for (size_t i = 0; i < n; ++i) {
    const bool nan = std::isnan(xd[i]);
    const bool inf = std::isinf(xd[i]);
    if (!nan && !inf) continue;
    if (counts.first_index == n) counts.first_index = i;
    counts.nans += nan ? 1 : 0;
    counts.infs += inf ? 1 : 0;
  }
  return counts;
}

}  // namespace pup::la
