#include "la/kernels.h"

#include <cmath>

namespace pup::la {
namespace {

void EnsureShape(size_t rows, size_t cols, Matrix* out) {
  if (out->rows() != rows || out->cols() != cols) {
    *out = Matrix(rows, cols);
  } else {
    out->Zero();
  }
}

// Resize without zeroing for kernels that overwrite every entry.
void EnsureShapeNoZero(size_t rows, size_t cols, Matrix* out) {
  if (out->rows() != rows || out->cols() != cols) {
    *out = Matrix(rows, cols);
  }
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  EnsureShape(m, n, out);
  // ikj loop order: streams through b and out rows contiguously.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  EnsureShape(m, n, out);
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->Row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  EnsureShapeNoZero(m, n, out);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

void Spmm(const CsrMatrix& sparse, const Matrix& dense, Matrix* out) {
  PUP_CHECK_EQ(sparse.cols(), dense.rows());
  const size_t m = sparse.rows(), n = dense.cols();
  EnsureShape(m, n, out);
  const auto& row_ptr = sparse.row_ptr();
  const auto& col_idx = sparse.col_idx();
  const auto& values = sparse.values();
  for (size_t i = 0; i < m; ++i) {
    float* orow = out->Row(i);
    for (uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* drow = dense.Row(col_idx[k]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
}

void Axpy(float alpha, const Matrix& x, Matrix* out) {
  PUP_CHECK(x.SameShape(*out));
  const float* xd = x.data();
  float* od = out->data();
  for (size_t i = 0; i < x.size(); ++i) od[i] += alpha * xd[i];
}

void Add(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) {
    out->data()[i] = x.data()[i] + y.data()[i];
  }
}

void Sub(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) {
    out->data()[i] = x.data()[i] - y.data()[i];
  }
}

void Mul(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) {
    out->data()[i] = x.data()[i] * y.data()[i];
  }
}

void Scale(float alpha, const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) out->data()[i] = alpha * x.data()[i];
}

void Tanh(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) {
    out->data()[i] = std::tanh(x.data()[i]);
  }
}

void Sigmoid(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) {
    float v = x.data()[i];
    // Stable: never exponentiate a positive argument.
    out->data()[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                               : std::exp(v) / (1.0f + std::exp(v));
  }
}

void LeakyRelu(const Matrix& x, float slope, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.size(); ++i) {
    float v = x.data()[i];
    out->data()[i] = v > 0.0f ? v : slope * v;
  }
}

void GatherRows(const Matrix& table, const std::vector<uint32_t>& idx,
                Matrix* out) {
  EnsureShapeNoZero(idx.size(), table.cols(), out);
  for (size_t i = 0; i < idx.size(); ++i) {
    PUP_DCHECK(idx[i] < table.rows());
    const float* src = table.Row(idx[i]);
    float* dst = out->Row(i);
    std::copy(src, src + table.cols(), dst);
  }
}

void ScatterAddRows(const Matrix& src, const std::vector<uint32_t>& idx,
                    Matrix* table) {
  PUP_CHECK_EQ(src.rows(), idx.size());
  PUP_CHECK_EQ(src.cols(), table->cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    PUP_DCHECK(idx[i] < table->rows());
    const float* s = src.Row(i);
    float* d = table->Row(idx[i]);
    for (size_t j = 0; j < src.cols(); ++j) d[j] += s[j];
  }
}

void RowDot(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), 1, out);
  for (size_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    const float* yr = y.Row(i);
    float acc = 0.0f;
    for (size_t j = 0; j < x.cols(); ++j) acc += xr[j] * yr[j];
    (*out)(i, 0) = acc;
  }
}

void RowSum(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), 1, out);
  for (size_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    float acc = 0.0f;
    for (size_t j = 0; j < x.cols(); ++j) acc += xr[j];
    (*out)(i, 0) = acc;
  }
}

void RowScale(const Matrix& x, const Matrix& s, Matrix* out) {
  PUP_CHECK_EQ(s.rows(), x.rows());
  PUP_CHECK_EQ(s.cols(), 1u);
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  for (size_t i = 0; i < x.rows(); ++i) {
    const float f = s(i, 0);
    const float* xr = x.Row(i);
    float* orow = out->Row(i);
    for (size_t j = 0; j < x.cols(); ++j) orow[j] = xr[j] * f;
  }
}

double Sum(const Matrix& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x.data()[i];
  return acc;
}

double SquaredNorm(const Matrix& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x.data()[i]) * x.data()[i];
  }
  return acc;
}

double Dot(const Matrix& x, const Matrix& y) {
  PUP_CHECK(x.SameShape(y));
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x.data()[i]) * y.data()[i];
  }
  return acc;
}

float MaxAbs(const Matrix& x) {
  float m = 0.0f;
  for (size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(x.data()[i]));
  }
  return m;
}

void Gemv(const Matrix& a, const Matrix& x, Matrix* out) {
  PUP_CHECK_EQ(x.cols(), 1u);
  PUP_CHECK_EQ(a.cols(), x.rows());
  EnsureShapeNoZero(a.rows(), 1, out);
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float acc = 0.0f;
    for (size_t j = 0; j < a.cols(); ++j) acc += arow[j] * x(j, 0);
    (*out)(i, 0) = acc;
  }
}

}  // namespace pup::la
