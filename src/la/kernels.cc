#include "la/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/thread_pool.h"
#include "la/simd/backend.h"
#include "obs/registry.h"

namespace pup::la {
namespace {

// Resize without zeroing; every kernel below either overwrites each entry
// or explicitly initializes the rows it owns inside its parallel region.
// ResizeNoZero retains the buffer's capacity, so a recycled output matrix
// (tape arena / workspace cache) reaches steady state with no allocation.
void EnsureShapeNoZero(size_t rows, size_t cols, Matrix* out) {
  if (out->rows() != rows || out->cols() != cols) {
    out->ResizeNoZero(rows, cols);
  }
}

// Minimum scalar operations per ParallelFor chunk; keeps scheduling
// overhead well under the cost of the work itself. Also a multiple of
// Matrix::kAlignFloats, so flat elementwise chunks cover whole aligned
// lanes (the SIMD backends rely on this; see docs/simd.md).
constexpr size_t kMinWorkPerChunk = size_t{1} << 14;

// Rows per chunk for a kernel whose per-row cost is `row_cost` scalar ops.
size_t RowGrain(size_t row_cost) {
  return std::max<size_t>(1, kMinWorkPerChunk / std::max<size_t>(1, row_cost));
}

// Order-stable chunked reduction. With a single-thread pool this is the
// historical serial loop (one accumulator, bitwise-identical results);
// with more threads, fixed grain-sized chunks are reduced independently
// and combined in chunk order, so the result is deterministic for any
// pool size > 1 and within reduction-order tolerance of serial.
template <typename ChunkFn>
double ChunkedReduce(size_t n, const ChunkFn& chunk_sum) {
  constexpr size_t kGrain = kMinWorkPerChunk;
  if (n <= kGrain || ThreadPool::Global().num_threads() <= 1) {
    return chunk_sum(size_t{0}, n);
  }
  const size_t num_chunks = (n + kGrain - 1) / kGrain;
  std::vector<double> partial(num_chunks, 0.0);
  ParallelFor(0, n, kGrain,
              [&](size_t lo, size_t hi) { partial[lo / kGrain] = chunk_sum(lo, hi); });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

// Invokes fn(ptr, len) for the maximal contiguous buffer runs holding the
// logical elements with flat indices [lo, hi) — one run when the matrix
// is contiguous, per-row (or row-fragment) runs when the leading
// dimension is padded. Reductions iterate logically through this so
// their accumulation order is independent of the padded layout.
template <typename Fn>
void ForEachLogicalRun(const Matrix& x, size_t lo, size_t hi, const Fn& fn) {
  if (lo >= hi) return;
  if (x.IsContiguous()) {
    fn(x.data() + lo, hi - lo);
    return;
  }
  const size_t cols = x.cols();
  size_t i = lo;
  while (i < hi) {
    const size_t r = i / cols;
    const size_t c = i % cols;
    const size_t len = std::min(cols - c, hi - i);
    fn(x.Row(r) + c, len);
    i += len;
  }
}

// Two-matrix variant for Dot: x and y have the same shape, hence the same
// run decomposition.
template <typename Fn>
void ForEachLogicalRun2(const Matrix& x, const Matrix& y, size_t lo,
                        size_t hi, const Fn& fn) {
  if (lo >= hi) return;
  if (x.IsContiguous() && y.IsContiguous()) {
    fn(x.data() + lo, y.data() + lo, hi - lo);
    return;
  }
  const size_t cols = x.cols();
  size_t i = lo;
  while (i < hi) {
    const size_t r = i / cols;
    const size_t c = i % cols;
    const size_t len = std::min(cols - c, hi - i);
    fn(x.Row(r) + c, y.Row(r) + c, len);
    i += len;
  }
}

// Shared verdict primitive behind AllFinite / CountNonFinite (and
// therefore Matrix::AssertFinite and ag::NumericGuard): the logical flat
// index of the first non-finite element, or size(). One dispatched
// implementation path, so the SIMD and scalar provenance scans cannot
// diverge on the verdict or the reported index.
size_t FirstNonFinite(const Matrix& x) {
  const simd::Backend& be = simd::Active();
  if (x.IsContiguous()) {
    return be.find_nonfinite(x.data(), x.size());
  }
  const size_t cols = x.cols();
  for (size_t r = 0; r < x.rows(); ++r) {
    const size_t idx = be.find_nonfinite(x.Row(r), cols);
    if (idx < cols) return r * cols + idx;
  }
  return x.size();
}

}  // namespace

// PUP_HOT
void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_OBS_COUNT("la/gemm", 1);
  PUP_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  EnsureShapeNoZero(m, n, out);
  const simd::Backend& be = simd::Active();
  // Vector backends compute the full padded row width (whole lanes; the
  // b and out strides are equal by layout), scalar exactly the logical
  // columns — out's pad lanes are never consumed either way.
  const size_t nw = n <= 1 ? n : out->stride();
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    be.gemm_rows(a.data(), a.stride(), b.data(), b.stride(), out->data(),
                 out->stride(), lo, hi, k, n, nw);
  });
}

// PUP_HOT
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_OBS_COUNT("la/gemm_ta", 1);
  PUP_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  EnsureShapeNoZero(m, n, out);
  const simd::Backend& be = simd::Active();
  const size_t nw = n <= 1 ? n : out->stride();
  // out(i,j) = Σ_p a(p,i)·b(p,j); p stays the innermost accumulation
  // order so results match the historical p-outer loop bitwise.
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    be.gemm_ta_rows(a.data(), a.stride(), b.data(), b.stride(), out->data(),
                    out->stride(), lo, hi, k, n, nw);
  });
}

// PUP_HOT
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  PUP_OBS_COUNT("la/gemm_tb", 1);
  PUP_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  EnsureShapeNoZero(m, n, out);
  const simd::Backend& be = simd::Active();
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    be.gemm_tb_rows(a.data(), a.stride(), b.data(), b.stride(), out->data(),
                    out->stride(), lo, hi, k, n);
  });
}

// PUP_HOT
void Spmm(const CsrMatrix& sparse, const Matrix& dense, Matrix* out) {
  PUP_OBS_COUNT("la/spmm", 1);
  PUP_CHECK_EQ(sparse.cols(), dense.rows());
  const size_t m = sparse.rows(), n = dense.cols();
  EnsureShapeNoZero(m, n, out);
  const auto& row_ptr = sparse.row_ptr();
  const auto& col_idx = sparse.col_idx();
  const auto& values = sparse.values();
  // Average row cost; individual rows vary but chunks amortize.
  const size_t row_cost = m == 0 ? 0 : (sparse.nnz() * n) / m;
  ParallelFor(0, m, RowGrain(row_cost), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* orow = out->Row(i);
      std::fill(orow, orow + n, 0.0f);
      for (uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const float v = values[k];
        if (v == 0.0f) continue;  // Explicit zeros are common after masking.
        const float* drow = dense.Row(col_idx[k]);
        for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
      }
    }
  });
}

// PUP_HOT
void Axpy(float alpha, const Matrix& x, Matrix* out) {
  PUP_CHECK(x.SameShape(*out));
  const simd::Backend& be = simd::Active();
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk,
              [&](size_t lo, size_t hi) { be.axpy(alpha, xd, od, lo, hi); });
}

// PUP_HOT
void Add(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  const float* yd = y.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = xd[i] + yd[i];
  });
}

// PUP_HOT
void Sub(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  const float* yd = y.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = xd[i] - yd[i];
  });
}

// PUP_HOT
void Mul(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  const float* yd = y.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = xd[i] * yd[i];
  });
}

// PUP_HOT
void Scale(float alpha, const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) od[i] = alpha * xd[i];
  });
}

// PUP_HOT
void Tanh(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const simd::Backend& be = simd::Active();
  const float* xd = x.data();
  float* od = out->data();
  // tanh costs far more than one scalar op per element; use a small grain.
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk / 16,
              [&](size_t lo, size_t hi) { be.tanh(xd, od, lo, hi); });
}

// PUP_HOT
void Sigmoid(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const simd::Backend& be = simd::Active();
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk / 16,
              [&](size_t lo, size_t hi) { be.sigmoid(xd, od, lo, hi); });
}

// PUP_HOT
void LeakyRelu(const Matrix& x, float slope, Matrix* out) {
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const float* xd = x.data();
  float* od = out->data();
  ParallelFor(0, x.padded_size(), kMinWorkPerChunk, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float v = xd[i];
      od[i] = v > 0.0f ? v : slope * v;
    }
  });
}

// PUP_HOT
void GatherRows(const Matrix& table, const std::vector<uint32_t>& idx,
                Matrix* out) {
  PUP_OBS_COUNT("la/gather_rows", 1);
  EnsureShapeNoZero(idx.size(), table.cols(), out);
  const size_t cols = table.cols();
  ParallelFor(0, idx.size(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      PUP_DCHECK(idx[i] < table.rows());
      const float* src = table.Row(idx[i]);
      std::copy(src, src + cols, out->Row(i));
    }
  });
}

// PUP_HOT
void GatherRowsAdd(const Matrix& table_a, const std::vector<uint32_t>& idx_a,
                   const Matrix& table_b, const std::vector<uint32_t>& idx_b,
                   Matrix* out) {
  PUP_OBS_COUNT("la/gather_rows_add", 1);
  PUP_CHECK_EQ(idx_a.size(), idx_b.size());
  PUP_CHECK_EQ(table_a.cols(), table_b.cols());
  const size_t cols = table_a.cols();
  EnsureShapeNoZero(idx_a.size(), cols, out);
  ParallelFor(0, idx_a.size(), RowGrain(2 * cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      PUP_DCHECK(idx_a[i] < table_a.rows() && idx_b[i] < table_b.rows());
      const float* ra = table_a.Row(idx_a[i]);
      const float* rb = table_b.Row(idx_b[i]);
      float* dst = out->Row(i);
      for (size_t j = 0; j < cols; ++j) dst[j] = ra[j] + rb[j];
    }
  });
}

// PUP_HOT
void ScatterAddRows(const Matrix& src, const std::vector<uint32_t>& idx,
                    Matrix* table) {
  PUP_OBS_COUNT("la/scatter_add_rows", 1);
  PUP_CHECK_EQ(src.rows(), idx.size());
  PUP_CHECK_EQ(src.cols(), table->cols());
  const size_t d = src.cols();
  const size_t shards = ThreadPool::Global().num_threads();
  if (shards <= 1 || idx.size() * d < 2 * kMinWorkPerChunk) {
    for (size_t i = 0; i < idx.size(); ++i) {
      PUP_DCHECK(idx[i] < table->rows());
      const float* s = src.Row(i);
      float* dst = table->Row(idx[i]);
      for (size_t j = 0; j < d; ++j) dst[j] += s[j];
    }
    return;
  }
  // Deterministic sharding: shard s owns destination rows with
  // idx % shards == s, so shards touch disjoint table rows and each
  // destination row accumulates its contributions in ascending i — the
  // exact serial order. Results are bitwise-identical to the serial loop
  // for any shard count; duplicates in idx are handled by construction.
  // One shard per chunk: shards are already sized to the pool, so any
  // coarser grain would idle workers.
  constexpr size_t kOneShardPerChunk = 1;
  ParallelFor(0, shards, kOneShardPerChunk, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      for (size_t i = 0; i < idx.size(); ++i) {
        if (idx[i] % shards != s) continue;
        PUP_DCHECK(idx[i] < table->rows());
        const float* src_row = src.Row(i);
        float* dst = table->Row(idx[i]);
        for (size_t j = 0; j < d; ++j) dst[j] += src_row[j];
      }
    }
  });
}

// PUP_HOT
void RowDot(const Matrix& x, const Matrix& y, Matrix* out) {
  PUP_OBS_COUNT("la/row_dot", 1);
  PUP_CHECK(x.SameShape(y));
  EnsureShapeNoZero(x.rows(), 1, out);
  const size_t cols = x.cols();
  const simd::Backend& be = simd::Active();
  ParallelFor(0, x.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    be.row_dot(x.data(), x.stride(), y.data(), y.stride(), out->data(), lo,
               hi, cols);
  });
}

// PUP_HOT
void RowDotDiff(const Matrix& x, const Matrix& a, const Matrix& b,
                Matrix* out) {
  PUP_OBS_COUNT("la/row_dot_diff", 1);
  PUP_CHECK(x.SameShape(a));
  PUP_CHECK(x.SameShape(b));
  EnsureShapeNoZero(x.rows(), 1, out);
  const size_t cols = x.cols();
  const simd::Backend& be = simd::Active();
  // Two independent row-dot accumulators per row, each in element order —
  // bitwise-identical to RowDot(x, b) − RowDot(x, a) at any thread count.
  ParallelFor(0, x.rows(), RowGrain(2 * cols), [&](size_t lo, size_t hi) {
    be.row_dot_diff(x.data(), x.stride(), a.data(), a.stride(), b.data(),
                    b.stride(), out->data(), lo, hi, cols);
  });
}

// PUP_HOT
void RowSum(const Matrix& x, Matrix* out) {
  EnsureShapeNoZero(x.rows(), 1, out);
  const size_t cols = x.cols();
  ParallelFor(0, x.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* xr = x.Row(i);
      float acc = 0.0f;
      for (size_t j = 0; j < cols; ++j) acc += xr[j];
      (*out)(i, 0) = acc;
    }
  });
}

// PUP_HOT
void RowScale(const Matrix& x, const Matrix& s, Matrix* out) {
  PUP_CHECK_EQ(s.rows(), x.rows());
  PUP_CHECK_EQ(s.cols(), 1u);
  EnsureShapeNoZero(x.rows(), x.cols(), out);
  const size_t cols = x.cols();
  ParallelFor(0, x.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float f = s(i, 0);
      const float* xr = x.Row(i);
      float* orow = out->Row(i);
      for (size_t j = 0; j < cols; ++j) orow[j] = xr[j] * f;
    }
  });
}

double Sum(const Matrix& x) {
  return ChunkedReduce(x.size(), [&x](size_t lo, size_t hi) {
    double acc = 0.0;
    ForEachLogicalRun(x, lo, hi, [&acc](const float* p, size_t len) {
      for (size_t i = 0; i < len; ++i) acc += p[i];
    });
    return acc;
  });
}

double SquaredNorm(const Matrix& x) {
  return ChunkedReduce(x.size(), [&x](size_t lo, size_t hi) {
    double acc = 0.0;
    ForEachLogicalRun(x, lo, hi, [&acc](const float* p, size_t len) {
      for (size_t i = 0; i < len; ++i) {
        acc += static_cast<double>(p[i]) * p[i];
      }
    });
    return acc;
  });
}

double Dot(const Matrix& x, const Matrix& y) {
  PUP_CHECK(x.SameShape(y));
  return ChunkedReduce(x.size(), [&x, &y](size_t lo, size_t hi) {
    double acc = 0.0;
    ForEachLogicalRun2(x, y, lo, hi,
                       [&acc](const float* px, const float* py, size_t len) {
                         for (size_t i = 0; i < len; ++i) {
                           acc += static_cast<double>(px[i]) * py[i];
                         }
                       });
    return acc;
  });
}

float MaxAbs(const Matrix& x) {
  // max is exactly associative, so the chunked combine is bitwise-stable
  // for every thread count.
  const size_t n = x.size();
  constexpr size_t kGrain = kMinWorkPerChunk;
  auto chunk_max = [&x](size_t lo, size_t hi) {
    float m = 0.0f;
    ForEachLogicalRun(x, lo, hi, [&m](const float* p, size_t len) {
      for (size_t i = 0; i < len; ++i) m = std::max(m, std::abs(p[i]));
    });
    return m;
  };
  if (n <= kGrain || ThreadPool::Global().num_threads() <= 1) {
    return chunk_max(0, n);
  }
  const size_t num_chunks = (n + kGrain - 1) / kGrain;
  std::vector<float> partial(num_chunks, 0.0f);
  ParallelFor(0, n, kGrain, [&](size_t lo, size_t hi) {
    partial[lo / kGrain] = chunk_max(lo, hi);
  });
  float m = 0.0f;
  for (float p : partial) m = std::max(m, p);
  return m;
}

// PUP_HOT
void Gemv(const Matrix& a, const Matrix& x, Matrix* out) {
  PUP_OBS_COUNT("la/gemv", 1);
  PUP_CHECK_EQ(x.cols(), 1u);
  PUP_CHECK_EQ(a.cols(), x.rows());
  EnsureShapeNoZero(a.rows(), 1, out);
  const size_t cols = a.cols();
  const simd::Backend& be = simd::Active();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](size_t lo, size_t hi) {
    be.gemv_rows(a.data(), a.stride(), x.data(), out->data(), lo, hi, cols);
  });
}

// PUP_HOT: the serving full-ranking hot path; writes into caller-owned
// buffers and must not allocate.
void ScoreItemsForUser(const Matrix& items, const float* user,
                       const float* bias, float* out) {
  PUP_OBS_COUNT("la/score_user", 1);
  const size_t n = items.rows();
  const size_t d = items.cols();
  const simd::Backend& be = simd::Active();
  ParallelFor(0, n, RowGrain(d), [&](size_t lo, size_t hi) {
    be.gemv_rows(items.data(), items.stride(), user, out, lo, hi, d);
    if (bias != nullptr) {
      for (size_t i = lo; i < hi; ++i) out[i] += bias[i];
    }
  });
}

// PUP_HOT: one call scores a whole serving micro-batch.
void ScoreItemsForUsers(const Matrix& items, const Matrix& users,
                        const float* bias, Matrix* out) {
  PUP_OBS_COUNT("la/score_batch", 1);
  PUP_CHECK_EQ(users.cols(), items.cols());
  const size_t m = users.rows();
  const size_t d = users.cols();
  const size_t n = items.rows();
  EnsureShapeNoZero(m, n, out);
  const simd::Backend& be = simd::Active();
  // gemm_tb and gemv share one row-dot primitive per backend and float
  // multiplication commutes bitwise, so out.Row(r) below equals the
  // per-user gemv result exactly — batching never changes a score.
  ParallelFor(0, m, RowGrain(d * n), [&](size_t lo, size_t hi) {
    be.gemm_tb_rows(users.data(), users.stride(), items.data(),
                    items.stride(), out->data(), out->stride(), lo, hi, d, n);
    if (bias != nullptr) {
      for (size_t r = lo; r < hi; ++r) {
        float* row = out->Row(r);
        for (size_t i = 0; i < n; ++i) row[i] += bias[i];
      }
    }
  });
}

// PUP_HOT: candidate re-rank path; per-candidate single-row gemv keeps
// the accumulation identical to the full-ranking path.
void ScoreItemsSubset(const Matrix& items, const float* user,
                      const float* bias, const uint32_t* idx, size_t n_idx,
                      float* out) {
  PUP_OBS_COUNT("la/score_subset", 1);
  const size_t d = items.cols();
  const simd::Backend& be = simd::Active();
  ParallelFor(0, n_idx, RowGrain(d), [&](size_t lo, size_t hi) {
    for (size_t j = lo; j < hi; ++j) {
      PUP_DCHECK(idx[j] < items.rows());
      be.gemv_rows(items.Row(idx[j]), items.stride(), user, out + j, 0, 1, d);
      if (bias != nullptr) out[j] += bias[idx[j]];
    }
  });
}

// PUP_HOT: the quantized serving scan; writes into caller-owned buffers
// and must not allocate.
void ScoreItemsQuantized(const QuantizedTable& table,
                         const QuantizedQuery& query, const float* bias,
                         int32_t* acc, float* out) {
  PUP_OBS_COUNT("la/score_quant", 1);
  PUP_CHECK(query.mode == table.mode());
  PUP_CHECK_EQ(query.d, table.cols());
  const size_t n = table.rows();
  const size_t stride = table.row_stride();
  const simd::Backend& be = simd::Active();
  const float su = query.scale;
  const float psum = static_cast<float>(query.code_sum);
  const float* scales = table.scales().data();
  const float* mins = table.mins().data();
  const int8_t* qcodes = query.codes.data();
  const bool int4 = table.mode() == QuantMode::kInt4;
  // The 16-byte-aligned prefix that covers the logical columns; codes
  // beyond it are pad zeros the kernels skip (halves the int4 scan,
  // whose packed rows fill at most half the 64-byte-aligned stride).
  const size_t data_bytes = int4 ? (table.cols() + 1) / 2 : table.cols();
  const size_t bytes =
      std::min(stride, (data_bytes + size_t{15}) & ~size_t{15});
  ParallelFor(0, n, RowGrain(table.cols()), [&](size_t lo, size_t hi) {
    if (int4) {
      be.qdot_i4_rows(table.codes(), stride, bytes, qcodes, qcodes + stride,
                      acc, lo, hi);
    } else {
      be.qdot_i8_rows(table.codes(), stride, bytes, qcodes, acc, lo, hi);
    }
    // Fixed-order scalar dequant epilogue (docs/quantization.md): per
    // element, so chunk boundaries and backends cannot change a float.
    for (size_t i = lo; i < hi; ++i) {
      float s = scales[i] * su * static_cast<float>(acc[i]) +
                mins[i] * su * psum;
      if (bias != nullptr) s += bias[i];
      out[i] = s;
    }
  });
}

// PUP_HOT: quantized-path survivor re-rank; must not allocate.
void ScoreItemsRerank(const Matrix& items, const float* user,
                      const float* bias, const uint32_t* ids, size_t n_ids,
                      float* out) {
  PUP_OBS_COUNT("la/score_rerank", 1);
  const size_t d = items.cols();
  const simd::Backend& be = simd::Active();
  ParallelFor(0, n_ids, RowGrain(d), [&](size_t lo, size_t hi) {
    be.rerank_dot_rows(items.data(), items.stride(), user, ids, out, lo, hi,
                       d);
    if (bias != nullptr) {
      for (size_t j = lo; j < hi; ++j) {
        PUP_DCHECK(ids[j] < items.rows());
        out[j] += bias[ids[j]];
      }
    }
  });
}

// PUP_HOT: runs inside every guarded training step; must not allocate.
bool AllFinite(const Matrix& x) { return FirstNonFinite(x) == x.size(); }

NonFiniteCounts CountNonFinite(const Matrix& x) {
  NonFiniteCounts counts;
  const size_t n = x.size();
  // Verdict and first index come from the same dispatched scan AllFinite
  // uses; the element-wise counting below only runs on the failure path.
  counts.first_index = FirstNonFinite(x);
  for (size_t i = counts.first_index; i < n; ++i) {
    const float v = x.FlatAt(i);
    counts.nans += std::isnan(v) ? 1 : 0;
    counts.infs += std::isinf(v) ? 1 : 0;
  }
  return counts;
}

}  // namespace pup::la
