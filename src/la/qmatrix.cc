#include "la/qmatrix.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace pup::la {
namespace {

int32_t MaxCodeFor(QuantMode mode) {
  return mode == QuantMode::kInt4 ? QuantizedTable::kMaxCodeI4
                                  : QuantizedTable::kMaxCodeI8;
}

size_t LogicalRowBytes(QuantMode mode, size_t cols) {
  return mode == QuantMode::kInt4 ? (cols + 1) / 2 : cols;
}

}  // namespace

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kOff:
      return "off";
    case QuantMode::kInt8:
      return "int8";
    case QuantMode::kInt4:
      return "int4";
  }
  return "unknown";
}

Result<QuantMode> QuantModeFromString(const std::string& name) {
  if (name == "off") return QuantMode::kOff;
  if (name == "int8") return QuantMode::kInt8;
  if (name == "int4") return QuantMode::kInt4;
  return Status::InvalidArgument("unknown quantization mode '" + name +
                                 "' (expected off, int8, or int4)");
}

size_t QuantizedTable::RowStrideFor(QuantMode mode, size_t cols) {
  const size_t logical = LogicalRowBytes(mode, cols);
  return (logical + kRowAlignBytes - 1) / kRowAlignBytes * kRowAlignBytes;
}

Result<QuantizedTable> QuantizedTable::Quantize(const Matrix& src,
                                                QuantMode mode) {
  if (mode == QuantMode::kOff) {
    return Status::InvalidArgument("cannot build a QuantizedTable in mode off");
  }
  if (src.cols() > kMaxDim) {
    return Status::InvalidArgument(
        "table width " + std::to_string(src.cols()) +
        " exceeds the quantized scoring accumulator bound (" +
        std::to_string(kMaxDim) + ")");
  }
  const size_t rows = src.rows();
  const size_t cols = src.cols();
  const int32_t max_code = MaxCodeFor(mode);

  QuantizedTable table;
  table.mode_ = mode;
  table.rows_ = rows;
  table.cols_ = cols;
  table.stride_ = RowStrideFor(mode, cols);
  table.codes_.assign(rows * table.stride_, 0);
  table.scales_.resize(rows);
  table.mins_.resize(rows);

  for (size_t r = 0; r < rows; ++r) {
    const float* vrow = src.Row(r);
    float lo = 0.0f;
    float hi = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      const float v = vrow[c];
      if (!std::isfinite(v)) {
        // NumericGuard-style provenance: name the exact origin element so
        // a poisoned table points back at the training bug, not at the
        // quantizer.
        return Status::InvalidArgument(
            std::string(std::isnan(v) ? "NaN" : "Inf") +
            " in score table at row " + std::to_string(r) + " col " +
            std::to_string(c) + "; refusing to quantize non-finite state");
      }
      if (c == 0 || v < lo) lo = v;
      if (c == 0 || v > hi) hi = v;
    }
    // The range arithmetic runs in double so a huge-but-finite row
    // (hi - lo overflowing float) still quantizes; the stored scale is
    // the rounded-once float the scoring epilogue will use.
    const double range = static_cast<double>(hi) - static_cast<double>(lo);
    const float scale =
        range > 0.0 ? static_cast<float>(range / max_code) : 0.0f;
    table.scales_[r] = scale;
    table.mins_[r] = lo;
    uint8_t* crow = table.codes_.data() + r * table.stride_;
    if (scale == 0.0f) continue;  // Constant row: every code stays 0.
    const double inv = 1.0 / static_cast<double>(scale);
    for (size_t c = 0; c < cols; ++c) {
      const double centered =
          (static_cast<double>(vrow[c]) - static_cast<double>(lo)) * inv;
      // lround is round-half-away-from-zero independent of the FP
      // environment; the clamp saturates the rounding outliers a
      // rounded-down scale can produce at the range ends.
      long code = std::lround(centered);
      if (code < 0) code = 0;
      if (code > max_code) code = max_code;
      if (mode == QuantMode::kInt4) {
        crow[c / 2] |= static_cast<uint8_t>(code) << ((c % 2) * 4);
      } else {
        crow[c] = static_cast<uint8_t>(code);
      }
    }
  }
  return table;
}

Result<QuantizedTable> QuantizedTable::FromParts(QuantMode mode, size_t rows,
                                                 size_t cols,
                                                 std::vector<float> scales,
                                                 std::vector<float> mins,
                                                 std::string codes) {
  if (mode == QuantMode::kOff) {
    return Status::InvalidArgument("quantized table parts with mode off");
  }
  if (cols > kMaxDim) {
    return Status::InvalidArgument("quantized table width out of range");
  }
  if (scales.size() != rows || mins.size() != rows) {
    return Status::InvalidArgument(
        "quantized table row-parameter count mismatch");
  }
  const size_t stride = RowStrideFor(mode, cols);
  if (codes.size() != rows * stride) {
    return Status::InvalidArgument(
        "quantized table code payload size mismatch: got " +
        std::to_string(codes.size()) + ", want " +
        std::to_string(rows * stride));
  }
  for (size_t r = 0; r < rows; ++r) {
    const float s = scales[r];
    const float m = mins[r];
    if (!std::isfinite(s) || !std::isfinite(m) || s < 0.0f) {
      return Status::InvalidArgument(
          "quantized table has a non-finite or negative row parameter at row " +
          std::to_string(r));
    }
    // The scoring kernels run the padded row width and rely on pad codes
    // (and the odd-width int4 tail nibble) being zero; enforce it here so
    // a buggy writer cannot produce a table that scores differently from
    // its logical contents.
    const uint8_t* crow =
        reinterpret_cast<const uint8_t*>(codes.data()) + r * stride;
    const size_t logical = LogicalRowBytes(mode, cols);
    for (size_t b = logical; b < stride; ++b) {
      if (crow[b] != 0) {
        return Status::InvalidArgument(
            "quantized table pad bytes are not zero at row " +
            std::to_string(r));
      }
    }
    if (mode == QuantMode::kInt4 && cols % 2 == 1 && logical > 0 &&
        (crow[logical - 1] >> 4) != 0) {
      return Status::InvalidArgument(
          "quantized table odd-width tail nibble is not zero at row " +
          std::to_string(r));
    }
  }
  QuantizedTable table;
  table.mode_ = mode;
  table.rows_ = rows;
  table.cols_ = cols;
  table.stride_ = stride;
  table.codes_.resize(codes.size());
  std::memcpy(table.codes_.data(), codes.data(), codes.size());
  table.scales_ = std::move(scales);
  table.mins_ = std::move(mins);
  return table;
}

namespace {

size_t QueryBufferSize(QuantMode mode, size_t cols) {
  const size_t stride = QuantizedTable::RowStrideFor(mode, cols);
  return mode == QuantMode::kInt4 ? 2 * stride : stride;
}

}  // namespace

void QuantizedQuery::Reserve(QuantMode m, size_t cols) {
  codes.reserve(QueryBufferSize(m, cols));
}

void QuantizedQuery::Prepare(const float* user, const QuantizedTable& table) {
  mode = table.mode();
  d = table.cols();
  stride = table.row_stride();
  // assign() both sizes and zeroes the pad region; with Reserve() done
  // up front it never allocates (vector keeps its capacity).
  codes.assign(QueryBufferSize(mode, d), 0);  // NOLINT(pup-hot-transitive): see above.
  float maxabs = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float a = user[j] < 0.0f ? -user[j] : user[j];
    if (a > maxabs) maxabs = a;
  }
  scale = maxabs > 0.0f ? maxabs / 127.0f : 0.0f;
  code_sum = 0;
  if (scale == 0.0f) return;  // All-zero user: every code stays 0.
  const double inv = 1.0 / static_cast<double>(scale);
  for (size_t j = 0; j < d; ++j) {
    long code = std::lround(static_cast<double>(user[j]) * inv);
    if (code < -127) code = -127;
    if (code > 127) code = 127;
    code_sum += static_cast<int32_t>(code);
    const auto c = static_cast<int8_t>(code);
    if (mode == QuantMode::kInt4) {
      // Deinterleave to match the nibble-unpack order of the kernels:
      // even columns in the first half, odd columns in the second.
      codes[(j % 2) * stride + j / 2] = c;
    } else {
      codes[j] = c;
    }
  }
}

float QuantizedTable::Dequant(size_t r, size_t c) const {
  PUP_DCHECK(r < rows_ && c < cols_);
  const uint8_t* crow = row(r);
  int32_t code;
  if (mode_ == QuantMode::kInt4) {
    code = (crow[c / 2] >> ((c % 2) * 4)) & 0x0f;
  } else {
    code = crow[c];
  }
  // Double math: for near-full-float-range rows, scale * max_code alone
  // can exceed FLT_MAX even though the reconstructed value (after adding
  // the negative min) is representable.
  return static_cast<float>(static_cast<double>(scales_[r]) * code +
                            static_cast<double>(mins_[r]));
}

}  // namespace pup::la
