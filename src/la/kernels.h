// Dense and sparse compute kernels.
//
// Free functions over Matrix/CsrMatrix; the autograd layer composes these
// into differentiable ops. All kernels assert shape agreement.
//
// Kernels parallelize over row blocks (or flat element blocks) through
// the global thread pool; a --threads=1 pool reproduces the historical
// serial implementation bitwise. ScatterAddRows stays bitwise-identical
// to serial at every thread count via destination-row sharding; the
// scalar reductions (Sum/SquaredNorm/Dot) combine fixed-size chunk
// partials in chunk order. See docs/threading.md.
#pragma once

#include <cstdint>
#include <vector>

#include "la/csr.h"
#include "la/matrix.h"
#include "la/qmatrix.h"

namespace pup::la {

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// out = aᵀ * b. Shapes: (k,m) x (k,n) -> (m,n).
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * bᵀ. Shapes: (m,k) x (n,k) -> (m,n).
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out);

/// out = sparse * dense. Shapes: (m,k)sparse x (k,n) -> (m,n).
void Spmm(const CsrMatrix& sparse, const Matrix& dense, Matrix* out);

/// out += alpha * x (elementwise, same shape).
void Axpy(float alpha, const Matrix& x, Matrix* out);

/// out = x + y.
void Add(const Matrix& x, const Matrix& y, Matrix* out);

/// out = x - y.
void Sub(const Matrix& x, const Matrix& y, Matrix* out);

/// out = x ⊙ y (Hadamard).
void Mul(const Matrix& x, const Matrix& y, Matrix* out);

/// out = alpha * x.
void Scale(float alpha, const Matrix& x, Matrix* out);

/// out(r,c) = tanh(x(r,c)).
void Tanh(const Matrix& x, Matrix* out);

/// out(r,c) = sigmoid(x(r,c)) computed in a numerically stable way.
void Sigmoid(const Matrix& x, Matrix* out);

/// out(r,c) = max(x(r,c), slope * x(r,c)). slope = 0 gives plain ReLU.
void LeakyRelu(const Matrix& x, float slope, Matrix* out);

/// out = rows of `table` selected by `idx`: out.Row(i) = table.Row(idx[i]).
void GatherRows(const Matrix& table, const std::vector<uint32_t>& idx,
                Matrix* out);

/// Fused gather + add: out.Row(i) = table_a.Row(idx_a[i]) +
/// table_b.Row(idx_b[i]). One pass instead of two gathers and an add;
/// bitwise-identical to the unfused composition.
void GatherRowsAdd(const Matrix& table_a, const std::vector<uint32_t>& idx_a,
                   const Matrix& table_b, const std::vector<uint32_t>& idx_b,
                   Matrix* out);

/// table.Row(idx[i]) += src.Row(i) for all i (duplicates accumulate).
void ScatterAddRows(const Matrix& src, const std::vector<uint32_t>& idx,
                    Matrix* table);

/// out(i,0) = dot(x.Row(i), y.Row(i)). Shapes: (n,d),(n,d) -> (n,1).
void RowDot(const Matrix& x, const Matrix& y, Matrix* out);

/// Pairwise score difference for BPR: out(i,0) = dot(x.Row(i), b.Row(i))
/// − dot(x.Row(i), a.Row(i)), each dot accumulated independently in
/// element order (bitwise-matching the two-RowDot composition).
void RowDotDiff(const Matrix& x, const Matrix& a, const Matrix& b,
                Matrix* out);

/// out(i,0) = sum of row i. Shape: (n,d) -> (n,1).
void RowSum(const Matrix& x, Matrix* out);

/// Broadcast each row of x (n,d) by the scalar column s (n,1):
/// out(i,j) = x(i,j) * s(i,0).
void RowScale(const Matrix& x, const Matrix& s, Matrix* out);

/// Sum of all entries.
double Sum(const Matrix& x);

/// Sum of squared entries (squared Frobenius norm).
double SquaredNorm(const Matrix& x);

/// Dot product of two same-shape matrices viewed as flat vectors.
double Dot(const Matrix& x, const Matrix& y);

/// Maximum absolute entry.
float MaxAbs(const Matrix& x);

/// y = A x for a dense (m,d) matrix and a length-d vector (d,1) -> (m,1).
void Gemv(const Matrix& a, const Matrix& x, Matrix* out);

// Serving-layer scoring entry points (docs/serving.md). All three route
// through the active backend's shared row-dot primitive (pinned lane
// accumulation order), so the single-query, batched, and candidate-subset
// paths produce bitwise-identical floats for the same backend — the
// mechanism behind the serve-vs-eval ranking parity contract. The
// optional `bias` (length items.rows(), nullptr for none) is added after
// each dot product. `user` must be 64-byte aligned when items.cols() >= 8
// (any padded Matrix row or Matrix::data() qualifies).

/// out[i] = dot(items.Row(i), user) + bias[i] for every item; `out`
/// holds items.rows() floats.
void ScoreItemsForUser(const Matrix& items, const float* user,
                       const float* bias, float* out);

/// Batched form for micro-batched serving: out(r, i) =
/// dot(items.Row(i), users.Row(r)) + bias[i]. Shapes: (n,d) items,
/// (m,d) users -> (m,n). Each output row is bitwise-equal to a
/// ScoreItemsForUser call on that user alone, at any batch shape.
void ScoreItemsForUsers(const Matrix& items, const Matrix& users,
                        const float* bias, Matrix* out);

/// Candidate re-rank form: out[j] = dot(items.Row(idx[j]), user) +
/// bias[idx[j]] for j in [0, n_idx). Ids in `idx` must be < items.rows().
void ScoreItemsSubset(const Matrix& items, const float* user,
                      const float* bias, const uint32_t* idx, size_t n_idx,
                      float* out);

// Quantized fastscan scoring (docs/quantization.md). Unlike the f32
// entry points above — bitwise-stable only per lane width — these two
// are bitwise-identical across EVERY backend, thread count, and batch
// schedule: the fastscan dot accumulates in exact int32 arithmetic, the
// dequant epilogue is fixed-order scalar math, and the re-rank dot runs
// in a pinned 16-virtual-lane shape on all ISAs.

/// out[i] = scales[i]*q.scale*acc[i] + mins[i]*q.scale*q.code_sum
///          (+ bias[i]) — the affine-dequantized approximate score of
/// every item row against the quantized query. `acc` is caller scratch
/// of table.rows() int32s (the exact integer dots land there); `out`
/// holds table.rows() floats. Never allocates.
void ScoreItemsQuantized(const QuantizedTable& table,
                         const QuantizedQuery& query, const float* bias,
                         int32_t* acc, float* out);

/// Exact-f32 survivor re-rank: out[j] = dot(items.Row(ids[j]), user) +
/// bias[ids[j]] via the pinned-16-virtual-lane backend dot, so the
/// refined scores (and thus the final ranking) are bitwise-identical on
/// every backend. `user` must be a padded Matrix row (or any 64-byte
/// aligned buffer readable through the next 16-float boundary).
void ScoreItemsRerank(const Matrix& items, const float* user,
                      const float* bias, const uint32_t* ids, size_t n_ids,
                      float* out);

/// True iff every entry is finite (no NaN, no ±Inf). Branch-free blockwise
/// scan (one multiply + compare per element, vectorizable) — the fast path
/// of the numeric sentinels (ag::NumericGuard, Matrix::AssertFinite).
/// Never allocates, so clean training steps stay allocation-free.
bool AllFinite(const Matrix& x);

/// Failure-path diagnostics for a matrix that failed AllFinite.
struct NonFiniteCounts {
  size_t nans = 0;
  size_t infs = 0;
  /// Flat (row-major) index of the first non-finite entry; x.size() when
  /// the matrix is clean.
  size_t first_index = 0;
};

/// Counts NaN / ±Inf entries and locates the first one. Serial elementwise
/// walk; only ever called after AllFinite has already failed.
NonFiniteCounts CountNonFinite(const Matrix& x);

}  // namespace pup::la
