#include "core/extended_pup.h"

#include <algorithm>

#include "autograd/ops.h"
#include "common/check.h"
#include "la/kernels.h"

namespace pup::core {

void ExtendedPup::Fit(const data::Dataset& dataset,
                      const std::vector<data::Interaction>& train) {
  Rng rng(config_.train.seed);
  dropout_rng_ = rng.Fork();

  std::vector<graph::AttributeBlock> item_blocks, user_blocks;
  item_attr_index_.clear();
  user_attr_index_.clear();
  for (size_t a = 0; a < config_.attributes.size(); ++a) {
    const ExtendedAttribute& attr = config_.attributes[a];
    graph::AttributeBlock block{attr.name, attr.cardinality, attr.values};
    if (attr.is_user_attribute) {
      PUP_CHECK_EQ(attr.values.size(), dataset.num_users);
      user_attr_index_.push_back(a);
      user_blocks.push_back(std::move(block));
    } else {
      PUP_CHECK_EQ(attr.values.size(), dataset.num_items);
      item_attr_index_.push_back(a);
      item_blocks.push_back(std::move(block));
    }
  }

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(train.size());
  for (const data::Interaction& x : train) pairs.emplace_back(x.user, x.item);
  graph_ = std::make_unique<graph::AttributeGraph>(
      dataset.num_users, dataset.num_items, pairs, std::move(item_blocks),
      std::move(user_blocks), config_.self_loops);

  node_emb_ = ag::Param(la::Matrix::Gaussian(
      graph_->num_nodes(), config_.embedding_dim, config_.init_stddev,
      &rng));

  train::TrainBpr(this, dataset, train, config_.train);

  // --- Fold the decoder for inference. All pairs among user-side fields
  // are per-user constants (dropped); pairs among item-side fields fold
  // into a bias; cross pairs are ⟨Σ user-side, Σ item-side⟩. ---
  ag::Tensor propagated = Propagate(/*training=*/false);
  const la::Matrix& f = propagated->value;
  const size_t d = config_.embedding_dim;

  la::Matrix user_vecs(dataset.num_users, d);
  for (uint32_t u = 0; u < dataset.num_users; ++u) {
    float* dst = user_vecs.Row(u);
    const float* fu = f.Row(graph_->UserNode(u));
    std::copy(fu, fu + d, dst);
    for (size_t b = 0; b < user_attr_index_.size(); ++b) {
      const auto& attr = config_.attributes[user_attr_index_[b]];
      const float* fa = f.Row(graph_->UserAttributeNode(b, attr.values[u]));
      for (size_t j = 0; j < d; ++j) dst[j] += fa[j];
    }
  }

  la::Matrix item_vecs(dataset.num_items, d);
  std::vector<float> item_bias(dataset.num_items, 0.0f);
  std::vector<const float*> side(1 + item_attr_index_.size());
  for (uint32_t i = 0; i < dataset.num_items; ++i) {
    side[0] = f.Row(graph_->ItemNode(i));
    for (size_t b = 0; b < item_attr_index_.size(); ++b) {
      const auto& attr = config_.attributes[item_attr_index_[b]];
      side[1 + b] = f.Row(graph_->ItemAttributeNode(b, attr.values[i]));
    }
    float* dst = item_vecs.Row(i);
    for (size_t j = 0; j < d; ++j) {
      float sum = 0.0f;
      for (const float* s : side) sum += s[j];
      dst[j] = sum;
    }
    float bias = 0.0f;
    for (size_t a = 0; a < side.size(); ++a) {
      for (size_t b = a + 1; b < side.size(); ++b) {
        for (size_t j = 0; j < d; ++j) bias += side[a][j] * side[b][j];
      }
    }
    item_bias[i] = bias;
  }
  scorer_ = models::DotScorer(std::move(user_vecs), std::move(item_vecs),
                              std::move(item_bias));
}

ag::Tensor ExtendedPup::Propagate(bool training) {
  ag::Tensor f = ag::Tanh(ag::Spmm(&graph_->adjacency(),
                                   &graph_->adjacency_transposed(),
                                   node_emb_));
  return ag::Dropout(f, config_.dropout, &dropout_rng_, training);
}

std::vector<std::vector<uint32_t>> ExtendedPup::BatchFields(
    const std::vector<uint32_t>& users,
    const std::vector<uint32_t>& items) const {
  const size_t b = users.size();
  std::vector<std::vector<uint32_t>> fields(
      2 + item_attr_index_.size() + user_attr_index_.size(),
      std::vector<uint32_t>(b));
  for (size_t k = 0; k < b; ++k) {
    fields[0][k] = graph_->UserNode(users[k]);
    fields[1][k] = graph_->ItemNode(items[k]);
    size_t field = 2;
    for (size_t blk = 0; blk < item_attr_index_.size(); ++blk, ++field) {
      const auto& attr = config_.attributes[item_attr_index_[blk]];
      fields[field][k] =
          graph_->ItemAttributeNode(blk, attr.values[items[k]]);
    }
    for (size_t blk = 0; blk < user_attr_index_.size(); ++blk, ++field) {
      const auto& attr = config_.attributes[user_attr_index_[blk]];
      fields[field][k] =
          graph_->UserAttributeNode(blk, attr.values[users[k]]);
    }
  }
  return fields;
}

ag::Tensor ExtendedPup::DecodeFields(
    const ag::Tensor& f, const std::vector<std::vector<uint32_t>>& fields) {
  // Eq. (7): ½(‖Σe‖² − Σ‖e‖²) per example.
  std::vector<ag::Tensor> gathered;
  // NOLINTNEXTLINE(pup-hot-transitive): bounded by the field count; the training forward builds the tape and allocates by design.
  gathered.reserve(fields.size());
  for (const auto& idx : fields) gathered.push_back(ag::Gather(f, idx));  // NOLINT(pup-hot-transitive): reserve() above.
  ag::Tensor sum = gathered[0];
  for (size_t k = 1; k < gathered.size(); ++k) {
    sum = ag::Add(sum, gathered[k]);
  }
  ag::Tensor total = ag::RowDot(sum, sum);
  ag::Tensor self = ag::RowDot(gathered[0], gathered[0]);
  for (size_t k = 1; k < gathered.size(); ++k) {
    self = ag::Add(self, ag::RowDot(gathered[k], gathered[k]));
  }
  return ag::Scale(ag::Sub(total, self), 0.5f);
}

void ExtendedPup::ScoreItems(uint32_t user, std::vector<float>* out) const {
  scorer_.ScoreItems(user, out);
}

std::vector<ag::Tensor> ExtendedPup::Parameters() { return {node_emb_}; }

Status ExtendedPup::SaveState(ckpt::Writer* writer) const {
  if (node_emb_ == nullptr) {
    return Status::FailedPrecondition("ExtendedPUP is not initialized");
  }
  ckpt::SaveMatrixSections({{"model/node_emb", &node_emb_->value}}, writer);
  writer->AddRng("model/dropout_rng", dropout_rng_.SaveState());
  return Status::OK();
}

Status ExtendedPup::LoadState(const ckpt::Reader& reader) {
  if (node_emb_ == nullptr) {
    return Status::FailedPrecondition("ExtendedPUP is not initialized");
  }
  PUP_ASSIGN_OR_RETURN(RngState rng, reader.GetRng("model/dropout_rng"));
  PUP_RETURN_NOT_OK(ckpt::LoadMatrixSections(
      reader, {{"model/node_emb", &node_emb_->value}}));
  dropout_rng_.RestoreState(rng);
  return Status::OK();
}

train::BprTrainable::BatchGraph ExtendedPup::ForwardBatch(
    const std::vector<uint32_t>& users, const std::vector<uint32_t>& pos_items,
    const std::vector<uint32_t>& neg_items, bool training) {
  ag::Tensor f = Propagate(training);
  auto pos_fields = BatchFields(users, pos_items);
  auto neg_fields = BatchFields(users, neg_items);

  BatchGraph batch;
  batch.pos_scores = DecodeFields(f, pos_fields);
  batch.neg_scores = DecodeFields(f, neg_fields);
  batch.l2_terms = {ag::Gather(node_emb_, pos_fields[0]),
                    ag::Gather(node_emb_, pos_fields[1]),
                    ag::Gather(node_emb_, neg_fields[1])};
  return batch;
}

}  // namespace pup::core
