// PUP — Price-aware User Preference modeling (§III), the paper's primary
// contribution.
//
// Two branches, each with its own unified heterogeneous graph encoder
// (user/item/category/price nodes, one tanh graph convolution — eq. 6) and
// a pairwise-interaction FM-style decoder (eq. 3):
//   s_global   = e_uᵀ e_i + e_uᵀ e_p + e_iᵀ e_p   (purchasing power)
//   s_category = e_uᵀ e_c + e_uᵀ e_p + e_cᵀ e_p   (category-local price)
//   s          = s_global + α · s_category
// with the holistic embedding size split between the branches (Table V).
//
// The config switches also express every ablation in the paper:
//   * PUP w/o c,p  — no price/category nodes, dot-product decoder;
//   * PUP w/ c     — category nodes only, decoder u·i + u·c + i·c;
//   * PUP w/ p (= PUP-) — price nodes only, decoder u·i + u·p + i·p;
//   * single-branch vs two-branch, self-loops on/off, dim allocation.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "autograd/tensor.h"
#include "ckpt/checkpointable.h"
#include "graph/hetero_graph.h"
#include "models/recommender.h"
#include "models/scoring.h"
#include "train/trainer.h"

namespace pup::core {

/// Configuration for the PUP model and its ablations.
struct PupConfig {
  /// Holistic embedding size; split between branches when two_branch.
  size_t embedding_dim = 64;
  /// Dimensions allocated to the category branch (Table V best: 56/8).
  size_t category_branch_dim = 8;
  /// Weight α of the category branch in eq. (3).
  float alpha = 0.5f;

  /// Graph/decoder ablation switches.
  bool use_price = true;
  bool use_category = true;
  /// Two-branch (global + category) vs a single global branch.
  bool two_branch = true;
  /// Self-loops in Â (eq. 5); exposed for the ablation bench.
  bool self_loops = true;
  /// PinSage-style per-node fan-in cap in Â (--max-neighbors); 0 keeps
  /// the full neighborhood (bitwise-golden default). The sampling seed is
  /// train.seed, so runs stay reproducible end to end.
  size_t max_neighbors = 0;

  /// Number of stacked graph convolutions (paper: 1). With more layers
  /// the final representation combines them per layer_combine.
  int num_layers = 1;
  /// How multi-layer outputs are combined: the last layer only, or the
  /// mean of all layers (LightGCN-style smoothing).
  enum class LayerCombine { kLast, kMean };
  LayerCombine layer_combine = LayerCombine::kMean;

  float dropout = 0.1f;
  float init_stddev = 0.05f;
  train::TrainOptions train;

  /// Display name override (e.g. "PUP-"); default derives from switches.
  std::optional<std::string> name;

  /// Full PUP with the paper's preferred 56/8 branch allocation.
  static PupConfig Full();
  /// PUP- of Fig 6: category nodes removed (price only, single branch).
  static PupConfig Minus();
  /// Ablations of Table III.
  static PupConfig WithoutCategoryAndPrice();
  static PupConfig WithCategoryOnly();
  static PupConfig WithPriceOnly();
};

/// The PUP recommender.
class Pup : public models::Recommender,
            public train::BprTrainable,
            public ckpt::Checkpointable {
 public:
  explicit Pup(PupConfig config = PupConfig::Full());

  std::string name() const override;

  void Fit(const data::Dataset& dataset,
           const std::vector<data::Interaction>& train) override;

  void ScoreItems(uint32_t user, std::vector<float>* out) const override;

  const models::DotScorer* ExportScorer() const override {
    return scorer_.initialized() ? &scorer_ : nullptr;
  }

  std::vector<ag::Tensor> Parameters() override;
  BatchGraph ForwardBatch(const std::vector<uint32_t>& users,
                          const std::vector<uint32_t>& pos_items,
                          const std::vector<uint32_t>& neg_items,
                          bool training) override;

  const PupConfig& config() const { return config_; }

  // ckpt::Checkpointable: both branch embedding tables plus the dropout
  // RNG stream.
  std::string checkpoint_key() const override { return "pup"; }
  Status SaveState(ckpt::Writer* writer) const override;
  Status LoadState(const ckpt::Reader& reader) override;

  /// Propagated price-level embeddings of the global branch (the learned
  /// "purchasing power" axis) — used by analysis examples. Only valid
  /// after Fit; empty when use_price is false.
  la::Matrix GlobalPriceEmbeddings() const;

 private:
  struct Branch {
    ag::Tensor emb;  // (num_nodes, branch_dim) raw embeddings.
    size_t dim = 0;
  };

  /// Propagated representations tanh(Â E) for one branch.
  ag::Tensor Propagate(const Branch& branch, bool training);

  /// Decoder for one branch over gathered rows (B, dim).
  /// Global branch: u·i + u·p + i·p (degenerating gracefully when price or
  /// category nodes are disabled); category branch: u·c + u·p + c·p.
  ag::Tensor DecodeGlobal(const ag::Tensor& f,
                          const std::vector<uint32_t>& user_nodes,
                          const std::vector<uint32_t>& item_nodes,
                          const std::vector<uint32_t>& cat_nodes,
                          const std::vector<uint32_t>& price_nodes);
  ag::Tensor DecodeCategory(const ag::Tensor& f,
                            const std::vector<uint32_t>& user_nodes,
                            const std::vector<uint32_t>& cat_nodes,
                            const std::vector<uint32_t>& price_nodes);

  PupConfig config_;
  const data::Dataset* dataset_ = nullptr;  // Valid during Fit.
  std::unique_ptr<graph::HeteroGraph> graph_;
  Branch global_;
  Branch category_;  // Unused when !two_branch.
  Rng dropout_rng_{0};
  models::DotScorer scorer_;
  size_t num_users_ = 0;

  // Per-batch node-index scratch, reused across steps (ForwardBatch
  // resizes; entries for disabled node types are never read).
  std::vector<uint32_t> user_nodes_, pos_nodes_, neg_nodes_, pos_cats_,
      neg_cats_, pos_prices_, neg_prices_;
};

}  // namespace pup::core
