#include "core/pup_model.h"

#include <algorithm>

#include "autograd/ops.h"
#include "common/check.h"
#include "la/kernels.h"

namespace pup::core {

PupConfig PupConfig::Full() {
  PupConfig c;
  c.embedding_dim = 64;
  c.category_branch_dim = 8;
  c.name = "PUP";
  return c;
}

PupConfig PupConfig::Minus() {
  PupConfig c;
  c.use_category = false;
  c.two_branch = false;
  c.name = "PUP-";
  return c;
}

PupConfig PupConfig::WithoutCategoryAndPrice() {
  PupConfig c;
  c.use_price = false;
  c.use_category = false;
  c.two_branch = false;
  c.name = "PUP w/o c,p";
  return c;
}

PupConfig PupConfig::WithCategoryOnly() {
  PupConfig c;
  c.use_price = false;
  c.two_branch = false;
  c.name = "PUP w/ c";
  return c;
}

PupConfig PupConfig::WithPriceOnly() {
  PupConfig c;
  c.use_category = false;
  c.two_branch = false;
  c.name = "PUP w/ p";
  return c;
}

Pup::Pup(PupConfig config) : config_(std::move(config)) {
  PUP_CHECK_GT(config_.embedding_dim, 0u);
  PUP_CHECK_GT(config_.num_layers, 0);
  if (config_.two_branch) {
    PUP_CHECK_MSG(config_.use_price && config_.use_category,
                  "the category branch needs price and category nodes");
    PUP_CHECK_LT(config_.category_branch_dim, config_.embedding_dim);
    PUP_CHECK_GT(config_.category_branch_dim, 0u);
  }
}

std::string Pup::name() const {
  if (config_.name.has_value()) return *config_.name;
  return config_.two_branch ? "PUP" : "PUP(single)";
}

void Pup::Fit(const data::Dataset& dataset,
              const std::vector<data::Interaction>& train) {
  if (config_.use_price) {
    PUP_CHECK_MSG(!dataset.item_price_level.empty(),
                  "PUP needs quantized price levels");
  }
  Rng rng(config_.train.seed);
  dropout_rng_ = rng.Fork();
  num_users_ = dataset.num_users;

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(train.size());
  for (const data::Interaction& x : train) pairs.emplace_back(x.user, x.item);

  graph::HeteroGraphOptions gopts;
  gopts.use_category_nodes = config_.use_category;
  gopts.use_price_nodes = config_.use_price;
  gopts.add_self_loops = config_.self_loops;
  gopts.max_neighbors = config_.max_neighbors;
  gopts.neighbor_seed = config_.train.seed;
  graph_ = std::make_unique<graph::HeteroGraph>(
      dataset.num_users, dataset.num_items, dataset.num_categories,
      dataset.num_price_levels, pairs, dataset.item_category,
      dataset.item_price_level.empty()
          ? std::vector<uint32_t>(dataset.num_items, 0)
          : dataset.item_price_level,
      gopts);

  global_.dim = config_.two_branch
                    ? config_.embedding_dim - config_.category_branch_dim
                    : config_.embedding_dim;
  global_.emb = ag::Param(la::Matrix::Gaussian(
      graph_->num_nodes(), global_.dim, config_.init_stddev, &rng));
  if (config_.two_branch) {
    category_.dim = config_.category_branch_dim;
    category_.emb = ag::Param(la::Matrix::Gaussian(
        graph_->num_nodes(), category_.dim, config_.init_stddev, &rng));
  }

  dataset_ = &dataset;
  train::TrainBpr(this, dataset, train, config_.train);

  // --- Inference cache: fold eq. (3) into user/item vectors + bias. ---
  //   s(u,i) = f_uᵍ·(f_iᵍ + f_pᵍ) + f_iᵍ·f_pᵍ
  //          + α [ f_uᶜ·(f_cᶜ + f_pᶜ) + f_cᶜ·f_pᶜ ]
  // (branch superscripts: each branch has independent embeddings).
  ag::Tensor fg = Propagate(global_, /*training=*/false);
  const la::Matrix& g = fg->value;
  const bool two = config_.two_branch;
  la::Matrix fc_matrix;
  if (two) {
    fc_matrix = Propagate(category_, /*training=*/false)->value;
  }
  const size_t d_total = global_.dim + (two ? category_.dim : 0);
  la::Matrix user_vecs(dataset.num_users, d_total);
  la::Matrix item_vecs(dataset.num_items, d_total);
  std::vector<float> item_bias(dataset.num_items, 0.0f);

  for (uint32_t u = 0; u < dataset.num_users; ++u) {
    const float* src = g.Row(graph_->UserNode(u));
    std::copy(src, src + global_.dim, user_vecs.Row(u));
    if (two) {
      const float* srcc = fc_matrix.Row(graph_->UserNode(u));
      std::copy(srcc, srcc + category_.dim, user_vecs.Row(u) + global_.dim);
    }
  }
  for (uint32_t i = 0; i < dataset.num_items; ++i) {
    float* dst = item_vecs.Row(i);
    const float* fi = g.Row(graph_->ItemNode(i));
    const float* fp = config_.use_price
                          ? g.Row(graph_->PriceNode(
                                dataset.item_price_level[i]))
                          : nullptr;
    const float* fc = config_.use_category
                          ? g.Row(graph_->CategoryNode(dataset.item_category[i]))
                          : nullptr;
    float bias = 0.0f;
    for (size_t j = 0; j < global_.dim; ++j) {
      float v = fi[j];
      if (fp != nullptr) {
        v += fp[j];
        bias += fi[j] * fp[j];
      } else if (fc != nullptr && !two) {
        // w/ c ablation: u·i + u·c + i·c.
        v += fc[j];
        bias += fi[j] * fc[j];
      }
      dst[j] = v;
    }
    if (two) {
      const float* cc =
          fc_matrix.Row(graph_->CategoryNode(dataset.item_category[i]));
      const float* cp =
          fc_matrix.Row(graph_->PriceNode(dataset.item_price_level[i]));
      for (size_t j = 0; j < category_.dim; ++j) {
        dst[global_.dim + j] = config_.alpha * (cc[j] + cp[j]);
        bias += config_.alpha * cc[j] * cp[j];
      }
    }
    item_bias[i] = bias;
  }
  scorer_ = models::DotScorer(std::move(user_vecs), std::move(item_vecs),
                              std::move(item_bias));
  dataset_ = nullptr;
}

ag::Tensor Pup::Propagate(const Branch& branch, bool training) {
  std::vector<ag::Tensor> layers;
  ag::Tensor f = branch.emb;
  for (int l = 0; l < config_.num_layers; ++l) {
    f = ag::Tanh(ag::Spmm(&graph_->adjacency(),
                          &graph_->adjacency_transposed(), f));
    layers.push_back(f);  // NOLINT(pup-hot-transitive): bounded by num_layers.
  }
  ag::Tensor out = layers.back();
  if (config_.layer_combine == PupConfig::LayerCombine::kMean &&
      layers.size() > 1) {
    out = layers[0];
    for (size_t l = 1; l < layers.size(); ++l) out = ag::Add(out, layers[l]);
    out = ag::Scale(out, 1.0f / static_cast<float>(layers.size()));
  }
  return ag::Dropout(out, config_.dropout, &dropout_rng_, training);
}

ag::Tensor Pup::DecodeGlobal(const ag::Tensor& f,
                             const std::vector<uint32_t>& user_nodes,
                             const std::vector<uint32_t>& item_nodes,
                             const std::vector<uint32_t>& cat_nodes,
                             const std::vector<uint32_t>& price_nodes) {
  ag::Tensor fu = ag::Gather(f, user_nodes);
  ag::Tensor fi = ag::Gather(f, item_nodes);
  ag::Tensor s = ag::RowDot(fu, fi);
  if (config_.use_price) {
    ag::Tensor fp = ag::Gather(f, price_nodes);
    s = ag::Add(s, ag::Add(ag::RowDot(fu, fp), ag::RowDot(fi, fp)));
  } else if (config_.use_category && !config_.two_branch) {
    ag::Tensor fc = ag::Gather(f, cat_nodes);
    s = ag::Add(s, ag::Add(ag::RowDot(fu, fc), ag::RowDot(fi, fc)));
  }
  return s;
}

ag::Tensor Pup::DecodeCategory(const ag::Tensor& f,
                               const std::vector<uint32_t>& user_nodes,
                               const std::vector<uint32_t>& cat_nodes,
                               const std::vector<uint32_t>& price_nodes) {
  ag::Tensor fu = ag::Gather(f, user_nodes);
  ag::Tensor fc = ag::Gather(f, cat_nodes);
  ag::Tensor fp = ag::Gather(f, price_nodes);
  return ag::Add(ag::RowDot(fu, fc),
                 ag::Add(ag::RowDot(fu, fp), ag::RowDot(fc, fp)));
}

void Pup::ScoreItems(uint32_t user, std::vector<float>* out) const {
  scorer_.ScoreItems(user, out);
}

std::vector<ag::Tensor> Pup::Parameters() {
  std::vector<ag::Tensor> params = {global_.emb};
  if (config_.two_branch) params.push_back(category_.emb);
  return params;
}

train::BprTrainable::BatchGraph Pup::ForwardBatch(
    const std::vector<uint32_t>& users, const std::vector<uint32_t>& pos_items,
    const std::vector<uint32_t>& neg_items, bool training) {
  PUP_CHECK(dataset_ != nullptr);
  const size_t b = users.size();
  // NOLINTNEXTLINE(pup-hot-transitive): member scratch sized to the batch; capacity is retained across steps.
  user_nodes_.resize(b);
  pos_nodes_.resize(b);  // NOLINT(pup-hot-transitive): see above.
  neg_nodes_.resize(b);  // NOLINT(pup-hot-transitive): see above.
  pos_cats_.resize(b);  // NOLINT(pup-hot-transitive): see above.
  neg_cats_.resize(b);  // NOLINT(pup-hot-transitive): see above.
  pos_prices_.resize(b);  // NOLINT(pup-hot-transitive): see above.
  neg_prices_.resize(b);  // NOLINT(pup-hot-transitive): see above.
  for (size_t k = 0; k < b; ++k) {
    user_nodes_[k] = graph_->UserNode(users[k]);
    pos_nodes_[k] = graph_->ItemNode(pos_items[k]);
    neg_nodes_[k] = graph_->ItemNode(neg_items[k]);
    if (config_.use_category) {
      pos_cats_[k] =
          graph_->CategoryNode(dataset_->item_category[pos_items[k]]);
      neg_cats_[k] =
          graph_->CategoryNode(dataset_->item_category[neg_items[k]]);
    }
    if (config_.use_price) {
      pos_prices_[k] =
          graph_->PriceNode(dataset_->item_price_level[pos_items[k]]);
      neg_prices_[k] =
          graph_->PriceNode(dataset_->item_price_level[neg_items[k]]);
    }
  }

  ag::Tensor fg = Propagate(global_, training);
  ag::Tensor pos = DecodeGlobal(fg, user_nodes_, pos_nodes_, pos_cats_,
                                pos_prices_);
  ag::Tensor neg = DecodeGlobal(fg, user_nodes_, neg_nodes_, neg_cats_,
                                neg_prices_);
  if (config_.two_branch) {
    ag::Tensor fc = Propagate(category_, training);
    pos = ag::Add(pos, ag::Scale(DecodeCategory(fc, user_nodes_, pos_cats_,
                                                pos_prices_),
                                 config_.alpha));
    neg = ag::Add(neg, ag::Scale(DecodeCategory(fc, user_nodes_, neg_cats_,
                                                neg_prices_),
                                 config_.alpha));
  }

  BatchGraph batch;
  batch.pos_scores = pos;
  batch.neg_scores = neg;
  batch.l2_terms = {ag::Gather(global_.emb, user_nodes_),
                    ag::Gather(global_.emb, pos_nodes_),
                    ag::Gather(global_.emb, neg_nodes_)};
  if (config_.two_branch) {
    batch.l2_terms.push_back(ag::Gather(category_.emb, user_nodes_));  // NOLINT(pup-hot-transitive): <= #fields terms.
    batch.l2_terms.push_back(ag::Gather(category_.emb, pos_cats_));  // NOLINT(pup-hot-transitive): <= #fields terms.
    batch.l2_terms.push_back(ag::Gather(category_.emb, pos_prices_));  // NOLINT(pup-hot-transitive): <= #fields terms.
  }
  return batch;
}

Status Pup::SaveState(ckpt::Writer* writer) const {
  if (global_.emb == nullptr) {
    return Status::FailedPrecondition("PUP is not initialized");
  }
  std::vector<std::pair<std::string, const la::Matrix*>> entries = {
      {"model/global_emb", &global_.emb->value}};
  if (config_.two_branch) {
    entries.emplace_back("model/category_emb", &category_.emb->value);
  }
  ckpt::SaveMatrixSections(entries, writer);
  writer->AddRng("model/dropout_rng", dropout_rng_.SaveState());
  return Status::OK();
}

Status Pup::LoadState(const ckpt::Reader& reader) {
  if (global_.emb == nullptr) {
    return Status::FailedPrecondition("PUP is not initialized");
  }
  std::vector<std::pair<std::string, la::Matrix*>> entries = {
      {"model/global_emb", &global_.emb->value}};
  if (config_.two_branch) {
    entries.emplace_back("model/category_emb", &category_.emb->value);
  }
  PUP_ASSIGN_OR_RETURN(RngState rng, reader.GetRng("model/dropout_rng"));
  PUP_RETURN_NOT_OK(ckpt::LoadMatrixSections(reader, entries));
  dropout_rng_.RestoreState(rng);
  return Status::OK();
}

la::Matrix Pup::GlobalPriceEmbeddings() const {
  if (!config_.use_price || graph_ == nullptr) return {};
  // Recompute a clean single propagation of the global branch (analysis
  // helper; uses one layer regardless of num_layers).
  la::Matrix conv;
  la::Spmm(graph_->adjacency(), global_.emb->value, &conv);
  la::Matrix propagated;
  la::Tanh(conv, &propagated);
  la::Matrix out(graph_->num_price_levels(), global_.dim);
  for (uint32_t p = 0; p < graph_->num_price_levels(); ++p) {
    const float* src = propagated.Row(graph_->PriceNode(p));
    std::copy(src, src + global_.dim, out.Row(p));
  }
  return out;
}

}  // namespace pup::core
