// ExtendedPup — the paper's §VII generality claim, implemented.
//
// PUP's recipe (attributes as first-class graph nodes + one tanh graph
// convolution + pairwise-interaction decoder) generalized to ANY number
// of categorical item attributes and user attributes:
//
//   * The graph is an AttributeGraph: [users | items | attr blocks…].
//   * The encoder is one propagation F = tanh(Â E) (eq. 6) with
//     feature-level dropout.
//   * The decoder scores a (u, i) pair with all pairwise inner products
//     among {f_u, f_i, f_a(i)…, f_b(u)…} — the 2-way FM over propagated
//     node embeddings, computed with the eq. (7) linear-time trick.
//
// Instantiating this with the item attributes {category, price} recovers
// a single-branch PUP variant; adding more blocks ("brand", "shop",
// user demographics) costs one config entry each.
#pragma once

#include <memory>
#include <string>

#include "autograd/tensor.h"
#include "ckpt/checkpointable.h"
#include "graph/attribute_graph.h"
#include "models/recommender.h"
#include "models/scoring.h"
#include "train/trainer.h"

namespace pup::core {

/// One attribute fed to ExtendedPup.
struct ExtendedAttribute {
  std::string name;
  size_t cardinality = 0;
  /// Value per item (item attribute) or per user (user attribute).
  std::vector<uint32_t> values;
  bool is_user_attribute = false;
};

/// Configuration for ExtendedPup.
struct ExtendedPupConfig {
  size_t embedding_dim = 64;
  float dropout = 0.1f;
  float init_stddev = 0.05f;
  bool self_loops = true;
  std::vector<ExtendedAttribute> attributes;
  train::TrainOptions train;
};

/// PUP generalized to arbitrary categorical attribute blocks.
class ExtendedPup : public models::Recommender,
                    public train::BprTrainable,
                    public ckpt::Checkpointable {
 public:
  explicit ExtendedPup(ExtendedPupConfig config)
      : config_(std::move(config)) {}

  std::string name() const override { return "ExtendedPUP"; }

  void Fit(const data::Dataset& dataset,
           const std::vector<data::Interaction>& train) override;

  void ScoreItems(uint32_t user, std::vector<float>* out) const override;

  const models::DotScorer* ExportScorer() const override {
    return scorer_.initialized() ? &scorer_ : nullptr;
  }

  std::vector<ag::Tensor> Parameters() override;
  BatchGraph ForwardBatch(const std::vector<uint32_t>& users,
                          const std::vector<uint32_t>& pos_items,
                          const std::vector<uint32_t>& neg_items,
                          bool training) override;

  const graph::AttributeGraph* graph() const { return graph_.get(); }

  // ckpt::Checkpointable (includes the dropout RNG stream):
  std::string checkpoint_key() const override { return "extended-pup"; }
  Status SaveState(ckpt::Writer* writer) const override;
  Status LoadState(const ckpt::Reader& reader) override;

 private:
  /// Propagated representations tanh(Â E), with dropout when training.
  ag::Tensor Propagate(bool training);

  /// Node-id field lists for a batch of (user, item) examples: the user,
  /// the item, each item attribute of the item, each user attribute of
  /// the user.
  std::vector<std::vector<uint32_t>> BatchFields(
      const std::vector<uint32_t>& users,
      const std::vector<uint32_t>& items) const;

  /// FM score over gathered fields via the eq. (7) trick.
  ag::Tensor DecodeFields(const ag::Tensor& f,
                          const std::vector<std::vector<uint32_t>>& fields);

  ExtendedPupConfig config_;
  std::unique_ptr<graph::AttributeGraph> graph_;
  // Indices into config_.attributes, split by side.
  std::vector<size_t> item_attr_index_;
  std::vector<size_t> user_attr_index_;
  ag::Tensor node_emb_;
  Rng dropout_rng_{0};
  models::DotScorer scorer_;
};

}  // namespace pup::core
