#include "serve/cache.h"

#include <algorithm>

#include "common/check.h"

namespace pup::serve {

ResultCache::ResultCache(size_t capacity, size_t num_users, size_t max_k)
    : entries_(capacity), user_slot_(num_users, kNone) {
  for (Entry& e : entries_) {
    e.items.reserve(max_k);
    e.scores.reserve(max_k);
  }
}

// PUP_HOT: one lookup per cacheable request; copies bounded by the
// Reserve'd max_k, direct-indexed user map, no hashing.
bool ResultCache::Lookup(uint32_t user, uint32_t k, uint64_t generation,
                         std::vector<uint32_t>* items,
                         std::vector<float>* scores) {
  if (user >= user_slot_.size()) return false;
  std::lock_guard<std::mutex> lock(mu_);  // NOLINT(pup-hot-transitive): sub-us slot-table critical section — the cache contract.
  const int32_t slot = user_slot_[user];
  if (slot == kNone) return false;
  Entry& e = entries_[slot];
  if (!e.valid || e.k != k || e.generation != generation) return false;
  // NOLINTNEXTLINE(pup-hot-alloc): <= max_k elements into reserved buffers.
  items->assign(e.items.begin(), e.items.end());
  // NOLINTNEXTLINE(pup-hot-alloc): <= max_k elements into reserved buffers.
  scores->assign(e.scores.begin(), e.scores.end());
  Unlink(slot);
  PushFront(slot);
  return true;
}

// PUP_HOT: one insert per cacheable miss; eviction is O(1) via the
// intrusive recency list, buffers stay within their Reserve'd capacity.
void ResultCache::Insert(uint32_t user, uint32_t k, uint64_t generation,
                         const std::vector<uint32_t>& items,
                         const std::vector<float>& scores) {
  if (entries_.empty() || user >= user_slot_.size()) return;
  PUP_DCHECK(items.size() <= entries_[0].items.capacity());
  std::lock_guard<std::mutex> lock(mu_);  // NOLINT(pup-hot-transitive): sub-us slot-table critical section — the cache contract.
  int32_t slot = user_slot_[user];
  if (slot == kNone) {
    if (live_ < entries_.size()) {
      slot = static_cast<int32_t>(live_);
      ++live_;
    } else {
      // Evict the least-recently-used user.
      slot = tail_;
      Unlink(slot);
      user_slot_[entries_[slot].user] = kNone;
    }
    user_slot_[user] = slot;
  } else {
    Unlink(slot);
  }
  Entry& e = entries_[slot];
  e.user = user;
  e.k = k;
  e.generation = generation;
  e.valid = true;
  // NOLINTNEXTLINE(pup-hot-alloc): <= max_k elements into reserved buffers.
  e.items.assign(items.begin(), items.end());
  // NOLINTNEXTLINE(pup-hot-alloc): <= max_k elements into reserved buffers.
  e.scores.assign(scores.begin(), scores.end());
  PushFront(slot);
}

void ResultCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) e.valid = false;
  std::fill(user_slot_.begin(), user_slot_.end(), kNone);
  head_ = kNone;
  tail_ = kNone;
  live_ = 0;
}

size_t ResultCache::size() {
  std::lock_guard<std::mutex> lock(mu_);  // NOLINT(pup-hot-transitive): counter read.
  return live_;
}

void ResultCache::Unlink(int32_t slot) {
  Entry& e = entries_[slot];
  if (e.prev != kNone) entries_[e.prev].next = e.next;
  if (e.next != kNone) entries_[e.next].prev = e.prev;
  if (head_ == slot) head_ = e.next;
  if (tail_ == slot) tail_ = e.prev;
  e.prev = kNone;
  e.next = kNone;
}

void ResultCache::PushFront(int32_t slot) {
  Entry& e = entries_[slot];
  e.prev = kNone;
  e.next = head_;
  if (head_ != kNone) entries_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNone) tail_ = slot;
}

}  // namespace pup::serve
