#include "serve/index.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "la/kernels.h"
#include "obs/registry.h"

namespace pup::serve {
namespace {

// Section names inside the index checkpoint. The "serve/" prefix keeps
// them disjoint from the "model/" namespace Checkpointable reserves.
constexpr char kSecFormat[] = "serve/format";
constexpr char kSecModel[] = "serve/model";
constexpr char kSecUsers[] = "serve/users";
constexpr char kSecItems[] = "serve/items";
constexpr char kSecBias[] = "serve/bias";
constexpr char kSecPrior[] = "serve/prior";
// Quantized-table sections, present only in v2 files (docs/quantization.md).
constexpr char kSecQuantMode[] = "serve/quant/mode";
constexpr char kSecQuantScales[] = "serve/quant/scales";
constexpr char kSecQuantMins[] = "serve/quant/mins";
constexpr char kSecQuantCodes[] = "serve/quant/codes";

// v1: f32-only index. v2: adds the serve/quant/* sections. Saves use the
// lowest version that can represent the index, so an unquantized index
// written by this build still loads in a v1-only binary.
constexpr uint64_t kIndexFormatVersion = 1;
constexpr uint64_t kIndexFormatVersionQuant = 2;

// Cold-start fallback scores: per-item popularity weighted by the item's
// price level share. Counts come from the full interaction list, so the
// prior is a pure deterministic function of the dataset (the floats are
// computed in double and rounded once).
std::vector<float> BuildPrior(const data::Dataset& dataset) {
  const size_t n = dataset.num_items;
  std::vector<uint64_t> count(n, 0);
  for (const data::Interaction& it : dataset.interactions) ++count[it.item];
  const bool has_levels = dataset.item_price_level.size() == n &&
                          dataset.num_price_levels > 0;
  if (!has_levels) {
    // Degrading to popularity-only silently hid quantization wiring bugs
    // (a mis-sized level vector produced a valid-looking but price-blind
    // prior); make the fallback observable.
    PUP_OBS_COUNT("serve/prior_level_fallback", 1);
    PUP_LOG_WARNING << "BuildPrior: item_price_level has "
                    << dataset.item_price_level.size() << " entries for " << n
                    << " items (num_price_levels=" << dataset.num_price_levels
                    << "); cold-start prior falls back to popularity only";
  }
  std::vector<uint64_t> level_count(has_levels ? dataset.num_price_levels : 1,
                                    0);
  for (size_t i = 0; i < n; ++i) {
    level_count[has_levels ? dataset.item_price_level[i] : 0] += count[i];
  }
  const double total =
      static_cast<double>(std::max<size_t>(dataset.interactions.size(), 1));
  std::vector<float> prior(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t lc = level_count[has_levels ? dataset.item_price_level[i]
                                               : 0];
    const double share = static_cast<double>(lc) / total;
    prior[i] = static_cast<float>(
        std::log1p(static_cast<double>(count[i])) * (1.0 + share));
  }
  return prior;
}

}  // namespace

ServingIndex ServingIndex::Freeze(const models::DotScorer& scorer,
                                  const data::Dataset& dataset,
                                  const std::string& model_name) {
  PUP_CHECK_MSG(scorer.initialized(), "cannot freeze an unfit scorer");
  PUP_CHECK_EQ(scorer.user_vecs().rows(), dataset.num_users);
  PUP_CHECK_EQ(scorer.item_vecs().rows(), dataset.num_items);
  ServingIndex index;
  index.user_vecs_ = scorer.user_vecs();
  index.item_vecs_ = scorer.item_vecs();
  index.item_bias_ = scorer.item_bias();
  index.prior_ = BuildPrior(dataset);
  index.model_name_ = model_name;
  index.fingerprint_ = ckpt::DatasetFingerprint::Of(dataset);
  return index;
}

Status ServingIndex::Save(const std::string& path) const {
  ckpt::Writer writer(fingerprint_);
  writer.AddU64(kSecFormat, quantized() ? kIndexFormatVersionQuant
                                        : kIndexFormatVersion);
  writer.AddString(kSecModel, model_name_);
  writer.AddMatrix(kSecUsers, user_vecs_);
  writer.AddMatrix(kSecItems, item_vecs_);
  la::Matrix bias(item_bias_.size(), 1);
  for (size_t i = 0; i < item_bias_.size(); ++i) bias(i, 0) = item_bias_[i];
  writer.AddMatrix(kSecBias, bias);
  la::Matrix prior(prior_.size(), 1);
  for (size_t i = 0; i < prior_.size(); ++i) prior(i, 0) = prior_[i];
  writer.AddMatrix(kSecPrior, prior);
  if (quantized()) {
    writer.AddU64(kSecQuantMode, static_cast<uint64_t>(quant_mode_));
    la::Matrix scales(quant_items_.rows(), 1);
    la::Matrix mins(quant_items_.rows(), 1);
    for (size_t i = 0; i < quant_items_.rows(); ++i) {
      scales(i, 0) = quant_items_.scales()[i];
      mins(i, 0) = quant_items_.mins()[i];
    }
    writer.AddMatrix(kSecQuantScales, scales);
    writer.AddMatrix(kSecQuantMins, mins);
    writer.AddBytes(kSecQuantCodes,
                    std::string(reinterpret_cast<const char*>(
                                    quant_items_.codes()),
                                quant_items_.codes_size()));
  }
  return writer.WriteFile(path);
}

Result<ServingIndex> ServingIndex::Load(const std::string& path) {
  // Reader::Open already rejects truncation, bit flips, and foreign files
  // (every CRC is checked up front); the shape validation below runs on
  // local values, so no partially built index can escape on any path.
  PUP_ASSIGN_OR_RETURN(ckpt::Reader reader, ckpt::Reader::Open(path));
  PUP_ASSIGN_OR_RETURN(uint64_t format, reader.GetU64(kSecFormat));
  if (format != kIndexFormatVersion && format != kIndexFormatVersionQuant) {
    return Status::InvalidArgument("unsupported serving index format");
  }
  PUP_ASSIGN_OR_RETURN(std::string model_name, reader.GetString(kSecModel));
  PUP_ASSIGN_OR_RETURN(la::Matrix users, reader.GetMatrix(kSecUsers));
  PUP_ASSIGN_OR_RETURN(la::Matrix items, reader.GetMatrix(kSecItems));
  PUP_ASSIGN_OR_RETURN(la::Matrix bias, reader.GetMatrix(kSecBias));
  PUP_ASSIGN_OR_RETURN(la::Matrix prior, reader.GetMatrix(kSecPrior));
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("serving index user/item dim mismatch");
  }
  if (bias.rows() != 0 &&
      (bias.rows() != items.rows() || bias.cols() != 1)) {
    return Status::InvalidArgument("serving index bias shape mismatch");
  }
  if (prior.rows() != items.rows() || (items.rows() > 0 && prior.cols() != 1)) {
    return Status::InvalidArgument("serving index prior shape mismatch");
  }
  ServingIndex index;
  index.user_vecs_ = std::move(users);
  index.item_vecs_ = std::move(items);
  index.item_bias_.resize(bias.rows());
  for (size_t i = 0; i < index.item_bias_.size(); ++i) {
    index.item_bias_[i] = bias(i, 0);
  }
  index.prior_.resize(prior.rows());
  for (size_t i = 0; i < index.prior_.size(); ++i) {
    index.prior_[i] = prior(i, 0);
  }
  index.model_name_ = std::move(model_name);
  index.fingerprint_ = reader.fingerprint();
  if (format == kIndexFormatVersionQuant) {
    PUP_ASSIGN_OR_RETURN(uint64_t mode_word, reader.GetU64(kSecQuantMode));
    if (mode_word != static_cast<uint64_t>(la::QuantMode::kInt8) &&
        mode_word != static_cast<uint64_t>(la::QuantMode::kInt4)) {
      return Status::InvalidArgument("serving index quant mode out of range");
    }
    const auto mode = static_cast<la::QuantMode>(mode_word);
    PUP_ASSIGN_OR_RETURN(la::Matrix scales, reader.GetMatrix(kSecQuantScales));
    PUP_ASSIGN_OR_RETURN(la::Matrix mins, reader.GetMatrix(kSecQuantMins));
    PUP_ASSIGN_OR_RETURN(std::string codes, reader.GetString(kSecQuantCodes));
    const size_t n = index.item_vecs_.rows();
    if (scales.rows() != n || mins.rows() != n ||
        (n > 0 && (scales.cols() != 1 || mins.cols() != 1))) {
      return Status::InvalidArgument(
          "serving index quant row-parameter shape mismatch");
    }
    std::vector<float> scale_vec(n);
    std::vector<float> min_vec(n);
    for (size_t i = 0; i < n; ++i) {
      scale_vec[i] = scales(i, 0);
      min_vec[i] = mins(i, 0);
    }
    // FromParts re-validates every layout invariant (sizes, pad bytes,
    // odd-width tail nibbles, finite row parameters), so a corrupted or
    // hand-edited quant payload is rejected here, never served.
    PUP_ASSIGN_OR_RETURN(
        index.quant_items_,
        la::QuantizedTable::FromParts(mode, n, index.item_vecs_.cols(),
                                      std::move(scale_vec), std::move(min_vec),
                                      std::move(codes)));
    index.quant_mode_ = mode;
  }
  return index;
}

Result<ServingIndex> ServingIndex::WithQuant(la::QuantMode mode) const {
  ServingIndex copy = *this;
  if (mode == la::QuantMode::kOff) {
    copy.quant_items_ = la::QuantizedTable();
    copy.quant_mode_ = la::QuantMode::kOff;
    return copy;
  }
  PUP_ASSIGN_OR_RETURN(copy.quant_items_,
                       la::QuantizedTable::Quantize(item_vecs_, mode));
  copy.quant_mode_ = mode;
  return copy;
}

void IndexScorer::ScoreItems(uint32_t user, std::vector<float>* out) const {
  PUP_CHECK(user < index_->num_users());
  out->resize(index_->num_items());
  la::ScoreItemsForUser(index_->item_vecs(), index_->user_vecs().Row(user),
                        index_->bias(), out->data());
}

}  // namespace pup::serve
