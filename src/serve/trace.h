// Synthetic "million-user day" request traces for load-testing the
// serving engine: Zipfian user popularity (so a hot-user cache has
// something to hit), a configurable mix of full-ranking / re-rank /
// cold-start traffic, and Poisson arrival offsets for open-loop
// generators. Deterministic: equal configs produce identical traces.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/server.h"

namespace pup::serve {

/// One trace event. `arrival_us` is the request's scheduled offset from
/// the start of the run (open-loop generators pace on it; closed-loop
/// generators ignore it).
struct TraceEvent {
  uint64_t arrival_us = 0;
  uint32_t user = 0;
  Scenario scenario = Scenario::kFullRanking;
  /// Re-rank pool id (index into Trace::rerank_pools) for kRerank events.
  uint32_t pool = 0;
};

struct TraceConfig {
  size_t num_events = 10000;
  size_t num_users = 1000;
  size_t num_items = 1000;
  /// Zipf exponent of the user popularity distribution.
  double zipf_s = 1.1;
  /// Scenario mix; the remainder is full ranking.
  double rerank_frac = 0.1;
  double cold_frac = 0.05;
  /// Mean open-loop arrival rate (exponential inter-arrivals).
  double arrival_qps = 20000.0;
  /// Candidate pools for re-rank traffic (sorted unique item ids).
  size_t num_pools = 16;
  size_t pool_size = 64;
  uint64_t seed = 42;
};

/// A generated request stream plus its shared re-rank candidate pools.
struct Trace {
  std::vector<TraceEvent> events;
  std::vector<std::vector<uint32_t>> rerank_pools;
};

/// Builds a deterministic trace for `config`. Users are drawn from a
/// Zipf(s) distribution over [0, num_users); cold-start events carry a
/// user id >= num_users (an id the frozen index has never seen).
Trace GenerateTrace(const TraceConfig& config);

}  // namespace pup::serve
