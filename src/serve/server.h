// pup::serve — the online ranking front end.
//
// A Server answers synchronous top-K requests over a frozen ServingIndex
// with cross-user micro-batching: the first thread to arrive at an empty
// batch becomes the leader, waits up to batch_timeout_us for up to
// max_batch companions, scores the whole batch as one batched GEMM over
// the shared item table, and completes every rider's reply. Batch
// execution is serialized, so under load the next leader naturally
// collects everything that queued meanwhile — occupancy grows with
// pressure instead of with configuration.
//
// Determinism contract (docs/serving.md): for a fixed index and SIMD
// backend, the reply for a request is a pure function of the request —
// independent of thread count, batch schedule, cache state, and which
// requests it shared a batch with. The scoring kernels guarantee the
// scores (shared row-dot primitive per backend) and eval::TopKSelector
// guarantees the ordering (score desc, ties to smaller id), so served
// rankings are bitwise-identical to the offline eval ranking of the same
// index.
//
// Quantized serving (docs/quantization.md): when the index carries an
// int8/int4 table, full rankings run as an exact-int32 fastscan over the
// code table, take the top rerank_factor * k survivors by approximate
// score, and re-rank the survivors at f32 through a pinned-16-lane dot.
// That path carries a STRONGER determinism contract than the f32 GEMM:
// the reply is bitwise-identical across SIMD backends too, not just per
// backend.
//
// Zero-alloc steady state: all scoring and staging buffers live in the
// caller-owned RequestContext, reply buffers are bounded by max_k, and
// the cache is fully preallocated — after warmup a request performs no
// heap allocation (same contract as training steps; serve_test pins it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/topk.h"
#include "la/matrix.h"
#include "obs/registry.h"
#include "serve/cache.h"
#include "serve/index.h"

namespace pup::serve {

/// Traffic classes the server admits.
enum class Scenario : uint8_t {
  /// Rank every item in the catalog for a known user.
  kFullRanking = 0,
  /// Re-rank a caller-supplied candidate pool for a known user.
  kRerank = 1,
  /// No usable user state: rank by the price-level popularity prior.
  kColdStart = 2,
};

/// One ranking request. Borrowed pointers must outlive the Rank call.
struct Request {
  uint32_t user = 0;
  /// Result size; must be in [1, ServerOptions::max_k].
  uint32_t k = 10;
  Scenario scenario = Scenario::kFullRanking;
  /// Candidate pool for kRerank: sorted ascending, unique, ids <
  /// num_items. Required for kRerank, ignored otherwise.
  const std::vector<uint32_t>* candidates = nullptr;
  /// Item ids to exclude (the user's seen items): sorted ascending, ids <
  /// num_items. Optional; applies to kFullRanking and kColdStart.
  const std::vector<uint32_t>* exclude = nullptr;
};

/// A served ranking, best first. May hold fewer than k items when the
/// catalog (minus exclusions / candidates) runs out.
struct Reply {
  std::vector<uint32_t> items;
  std::vector<float> scores;
  /// Scenario actually served (kColdStart for unknown-user fallback).
  Scenario served = Scenario::kFullRanking;
  bool cache_hit = false;

  /// Pre-sizes the buffers so steady-state replies never allocate.
  void Reserve(size_t max_k) {
    items.reserve(max_k);
    scores.reserve(max_k);
  }
};

struct ServerOptions {
  /// Largest micro-batch one GEMM scores; 1 disables cross-user batching.
  size_t max_batch = 32;
  /// How long a batch leader waits for companions before firing (0 =
  /// fire immediately; occupancy then comes from natural queueing only).
  uint64_t batch_timeout_us = 100;
  /// Hot-user result cache entries; 0 disables the cache.
  size_t cache_capacity = 0;
  /// Largest admissible k; sizes every reply/cache/selector buffer.
  size_t max_k = 100;
  /// Quantized path only: survivors kept for the exact-f32 re-rank stage
  /// are min(num_items, rerank_factor * k). Larger values trade QPS for
  /// recall; must be >= 1. Ignored when the index is not quantized.
  size_t rerank_factor = 4;
};

class Server;

/// Per-thread scoring scratch: batch staging, score matrices, selector
/// state. Constructing one allocates everything up front; a thread reuses
/// it across requests so the request loop stays allocation-free.
class RequestContext {
 public:
  explicit RequestContext(const Server& server);

 private:
  friend class Server;

  struct Slot {
    const Request* req = nullptr;
    Reply* reply = nullptr;
    Scenario served = Scenario::kFullRanking;
    bool done = false;
  };

  std::vector<Slot*> batch_;        ///< Claimed batch (leader only).
  std::vector<uint32_t> full_rows_; ///< batch_ positions scored by GEMM.
  la::Matrix batch_users_;          ///< (<= max_batch, dim) staging.
  la::Matrix batch_scores_;         ///< (<= max_batch, num_items) scores.
  std::vector<float> scratch_scores_;  ///< Subset / prior scoring buffer.
  std::vector<uint32_t> topk_;
  eval::TopKSelector selector_;

  // Quantized-path scratch (sized for either quant mode up front, so a
  // Reload onto a quantized index stays allocation-free).
  la::QuantizedQuery qquery_;          ///< Per-request quantized user codes.
  std::vector<int32_t> qacc_;          ///< Exact int32 fastscan dots.
  std::vector<uint32_t> survivors_;    ///< Top R*k approx ids, sorted by id.
  std::vector<float> rerank_scores_;   ///< Exact f32 survivor scores.
  eval::TopKSelector qselector_;       ///< Survivor selection (R*max_k).
};

/// Thread-safe serving front end over an immutable index snapshot.
class Server {
 public:
  Server(std::shared_ptr<const ServingIndex> index, ServerOptions options);

  /// Ranks synchronously; may coalesce with concurrent callers into one
  /// batched GEMM. `ctx` must not be shared between threads; `reply`
  /// should be Reserve'd to max_k by the caller once.
  void Rank(const Request& req, RequestContext* ctx, Reply* reply);

  /// Swaps in a freshly loaded index, bumps the generation, and
  /// invalidates the cache. In-flight batches finish on the snapshot they
  /// started with; later requests see only the new index.
  void Reload(std::shared_ptr<const ServingIndex> index);

  /// The index snapshot current requests rank from.
  std::shared_ptr<const ServingIndex> snapshot() const;

  uint64_t generation() const;
  const ServerOptions& options() const { return options_; }
  /// nullptr when cache_capacity == 0.
  ResultCache* cache() { return cache_.get(); }

 private:
  friend class RequestContext;

  using Slot = RequestContext::Slot;

  void ExecuteBatch(const ServingIndex& index, uint64_t generation,
                    RequestContext* ctx);
  void ServeFullRanking(const ServingIndex& index, uint64_t generation,
                        float* scores, const Request& req, Reply* reply,
                        RequestContext* ctx);
  void ServeFullRankingQuantized(const ServingIndex& index,
                                 uint64_t generation, const Request& req,
                                 Reply* reply, RequestContext* ctx);
  void ServeSubset(const ServingIndex& index, const Request& req,
                   Reply* reply, RequestContext* ctx);
  void ServePrior(const ServingIndex& index, const Request& req, Reply* reply,
                  RequestContext* ctx);

  ServerOptions options_;

  mutable std::mutex mu_;  ///< Guards queue_ and index_.
  std::condition_variable cv_;
  std::vector<Slot*> queue_;  ///< Forming batch; capacity max_batch.
  std::shared_ptr<const ServingIndex> index_;
  std::atomic<uint64_t> generation_{0};

  std::mutex exec_mu_;  ///< Serializes batch execution (see header note).

  std::unique_ptr<ResultCache> cache_;

  // Handles resolved once at construction; recording never allocates.
  obs::Counter* requests_;
  obs::Counter* batches_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Histogram* occupancy_;
  obs::Histogram* batch_timer_;
};

}  // namespace pup::serve
