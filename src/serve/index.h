// pup::serve — frozen-model serving index.
//
// A ServingIndex is the immutable, read-only artifact the online tier
// ranks from: the folded dot-product inference state of a trained model
// (user/item embedding tables in the padded 64-byte-aligned la::Matrix
// layout, so the SIMD scoring kernels run directly over it), the item
// bias, and a precomputed price-level popularity prior for cold-start
// fallback. It is built either by freezing a live model (Freeze) or by
// loading a checkpoint written by Save — a pup::ckpt file whose CRCs are
// fully validated before any index state is constructed, so a torn or
// bit-flipped file can never yield a partially built index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/status.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "la/matrix.h"
#include "la/qmatrix.h"
#include "models/scoring.h"

namespace pup::serve {

/// Immutable score tables + cold-start prior for one frozen model.
/// Thread-safe by construction: nothing mutates after Freeze/Load, so any
/// number of server threads may score from it concurrently.
class ServingIndex {
 public:
  /// Copies the model's folded inference state and derives the cold-start
  /// prior from the dataset's interactions and price levels. The scorer's
  /// table shapes must match the dataset's id spaces.
  static ServingIndex Freeze(const models::DotScorer& scorer,
                             const data::Dataset& dataset,
                             const std::string& model_name);

  /// Writes the index as a pup::ckpt checkpoint (atomic tmp+rename).
  Status Save(const std::string& path) const;

  /// Loads an index written by Save. Every CRC and every section shape is
  /// validated before the ServingIndex is constructed; on any error the
  /// Result carries a Status and no index exists. Both format versions
  /// load: v1 (f32-only) and v2 (with quantized item table).
  static Result<ServingIndex> Load(const std::string& path);

  /// Returns a copy of this index with the item score table
  /// (re)quantized to `mode` — the `--quant` switch behind both
  /// `train --export-index` and `serve`. kOff drops the quantized table
  /// (back to the pure f32 path); the integer modes re-derive it from
  /// the retained f32 table, so requantizing a loaded index is
  /// byte-identical to quantizing at freeze time. Fails if the item
  /// table is non-finite or wider than la::QuantizedTable::kMaxDim.
  Result<ServingIndex> WithQuant(la::QuantMode mode) const;

  /// Quantization mode of the item score table (kOff = pure f32 path).
  la::QuantMode quant_mode() const { return quant_mode_; }
  bool quantized() const { return quant_mode_ != la::QuantMode::kOff; }
  /// Empty unless quantized(). The f32 item_vecs() are always retained —
  /// the fastscan pass reads only the code table, the re-rank stage
  /// touches the f32 rows of the few surviving candidates.
  const la::QuantizedTable& quant_items() const { return quant_items_; }

  size_t num_users() const { return user_vecs_.rows(); }
  size_t num_items() const { return item_vecs_.rows(); }
  size_t dim() const { return item_vecs_.cols(); }
  const std::string& model_name() const { return model_name_; }
  const ckpt::DatasetFingerprint& fingerprint() const { return fingerprint_; }

  const la::Matrix& user_vecs() const { return user_vecs_; }
  const la::Matrix& item_vecs() const { return item_vecs_; }
  /// nullptr when the model has no additive item term.
  const float* bias() const {
    return item_bias_.empty() ? nullptr : item_bias_.data();
  }

  /// Cold-start fallback scores, one per item: item popularity boosted by
  /// its price level's share of traffic (log1p(count) * (1 + level
  /// share)). Pure function of the dataset, so identical across Freeze
  /// runs and save/load round trips.
  const std::vector<float>& cold_start_prior() const { return prior_; }

 private:
  ServingIndex() = default;

  la::Matrix user_vecs_;
  la::Matrix item_vecs_;
  la::QuantMode quant_mode_ = la::QuantMode::kOff;
  la::QuantizedTable quant_items_;
  std::vector<float> item_bias_;
  std::vector<float> prior_;
  std::string model_name_;
  ckpt::DatasetFingerprint fingerprint_;
};

/// eval::Scorer adapter over a frozen index. Scores through the same
/// la::ScoreItemsForUser kernel the Server uses, so running the offline
/// eval harness over an IndexScorer produces the reference rankings the
/// served top-K lists are bitwise-compared against (docs/serving.md).
class IndexScorer : public eval::Scorer {
 public:
  explicit IndexScorer(const ServingIndex* index) : index_(index) {}

  void ScoreItems(uint32_t user, std::vector<float>* out) const override;

 private:
  const ServingIndex* index_;
};

}  // namespace pup::serve
