// Hot-user result cache for the serving engine.
//
// An LRU cache of full-ranking top-K results keyed by (user, k,
// generation). Built for the zero-alloc steady state: all entries and
// their reply buffers are preallocated at construction, the user → entry
// map is a direct-indexed vector (no hashing, no tree nodes), and the
// recency list is intrusive (prev/next slot indices). The only
// synchronization is one mutex; lookups and inserts are O(1) and
// allocation-free.
//
// Consistency contract (docs/serving.md): for a given (user, generation)
// callers must present a consistent exclusion list — it is derived from
// the user's interaction history, which is frozen with the index — so the
// post-exclusion ranking is cacheable by user id alone. Reload bumps the
// generation, and Invalidate drops every entry wholesale.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace pup::serve {

/// Fixed-capacity LRU map from user id to a served top-K result.
class ResultCache {
 public:
  /// `capacity` entries, each able to hold `max_k` ids/scores, covering
  /// users in [0, num_users).
  ResultCache(size_t capacity, size_t num_users, size_t max_k);

  /// Copies the cached result for (user, k, generation) into the reply
  /// buffers and returns true, or returns false on miss. The entry is
  /// moved to the front of the recency list on a hit.
  bool Lookup(uint32_t user, uint32_t k, uint64_t generation,
              std::vector<uint32_t>* items, std::vector<float>* scores);

  /// Stores a served result, evicting the least-recently-used entry when
  /// full. `items`/`scores` must hold at most max_k elements. An existing
  /// entry for the user is overwritten (k/generation updated).
  void Insert(uint32_t user, uint32_t k, uint64_t generation,
              const std::vector<uint32_t>& items,
              const std::vector<float>& scores);

  /// Drops every entry (index reload). O(num_users); not a hot-path op.
  void Invalidate();

  size_t capacity() const { return entries_.size(); }
  /// Live entries (for tests; takes the lock).
  size_t size();

 private:
  static constexpr int32_t kNone = -1;

  struct Entry {
    uint32_t user = 0;
    uint32_t k = 0;
    uint64_t generation = 0;
    int32_t prev = kNone;
    int32_t next = kNone;
    bool valid = false;
    std::vector<uint32_t> items;
    std::vector<float> scores;
  };

  // Unlinks slot from the recency list (caller holds mu_).
  void Unlink(int32_t slot);
  // Pushes slot to the front of the recency list (caller holds mu_).
  void PushFront(int32_t slot);

  std::mutex mu_;
  std::vector<Entry> entries_;
  /// user id -> entry slot, kNone when not cached.
  std::vector<int32_t> user_slot_;
  int32_t head_ = kNone;
  int32_t tail_ = kNone;
  size_t live_ = 0;
};

}  // namespace pup::serve
