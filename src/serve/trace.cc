#include "serve/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace pup::serve {
namespace {

// Inverse-CDF Zipf sampler: cumulative weights are precomputed once
// (O(num_users)), each draw is one uniform plus a binary search. Exact
// and deterministic — no rejection loop whose iteration count could
// depend on floating-point platform quirks.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    // With n == 0 Sample would compute cdf_.size() - 1 == SIZE_MAX and
    // feed an empty range to lower_bound — reject it here, where the bug
    // would be planted, not at the (possibly distant) first draw.
    PUP_CHECK_MSG(n > 0, "ZipfSampler needs num_users > 0");
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  uint32_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint32_t>(
        std::min<size_t>(it - cdf_.begin(), cdf_.size() - 1));
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Trace GenerateTrace(const TraceConfig& config) {
  PUP_CHECK_MSG(config.num_users > 0,
                "GenerateTrace needs num_users > 0 (the Zipf user sampler "
                "has no support otherwise)");
  PUP_CHECK_MSG(config.num_items > 0, "GenerateTrace needs num_items > 0");
  PUP_CHECK(config.arrival_qps > 0.0);
  Rng rng(config.seed);
  Trace trace;

  // Shared candidate pools: distinct sorted samples of the catalog.
  const size_t pool_size =
      std::min<size_t>(config.pool_size, config.num_items);
  trace.rerank_pools.resize(std::max<size_t>(config.num_pools, 1));
  for (std::vector<uint32_t>& pool : trace.rerank_pools) {
    pool.reserve(pool_size);
    while (pool.size() < pool_size) {
      const uint32_t item =
          static_cast<uint32_t>(rng.NextBelow(config.num_items));
      const auto it = std::lower_bound(pool.begin(), pool.end(), item);
      if (it == pool.end() || *it != item) pool.insert(it, item);
    }
  }

  const ZipfSampler zipf(config.num_users, config.zipf_s);
  const double mean_gap_us = 1e6 / config.arrival_qps;
  double clock_us = 0.0;
  trace.events.reserve(config.num_events);
  for (size_t i = 0; i < config.num_events; ++i) {
    TraceEvent ev;
    // Exponential inter-arrival via inverse CDF (Poisson process).
    clock_us += -mean_gap_us * std::log(1.0 - rng.NextDouble());
    ev.arrival_us = static_cast<uint64_t>(clock_us);
    const double roll = rng.NextDouble();
    if (roll < config.cold_frac) {
      ev.scenario = Scenario::kColdStart;
      // An id beyond the trained user space: the index has no row for it.
      ev.user = static_cast<uint32_t>(config.num_users +
                                      rng.NextBelow(config.num_users));
    } else if (roll < config.cold_frac + config.rerank_frac) {
      ev.scenario = Scenario::kRerank;
      ev.user = zipf.Sample(&rng);
      ev.pool =
          static_cast<uint32_t>(rng.NextBelow(trace.rerank_pools.size()));
    } else {
      ev.scenario = Scenario::kFullRanking;
      ev.user = zipf.Sample(&rng);
    }
    trace.events.push_back(ev);
  }
  return trace;
}

}  // namespace pup::serve
