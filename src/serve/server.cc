#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"
#include "la/kernels.h"

namespace pup::serve {
namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// Copies the selected ranking into the reply, best first, dropping the
// tail once only masked (-inf) entries remain — an excluded item is never
// served, so a sparse catalog may legally return fewer than k items.
// PUP_HOT: bounded by max_k; reply buffers are Reserve'd by the caller.
void EmitRanked(const float* scores, const std::vector<uint32_t>& top,
                const std::vector<uint32_t>* remap, Reply* reply) {
  reply->items.clear();
  reply->scores.clear();
  for (uint32_t id : top) {
    if (scores[id] == kNegInf) break;
    // NOLINTNEXTLINE(pup-hot-alloc): <= max_k entries, Reserve'd buffer.
    reply->items.push_back(remap != nullptr ? (*remap)[id] : id);
    // NOLINTNEXTLINE(pup-hot-alloc): <= max_k entries, Reserve'd buffer.
    reply->scores.push_back(scores[id]);
  }
}

}  // namespace

RequestContext::RequestContext(const Server& server) {
  const ServerOptions& opt = server.options();
  const std::shared_ptr<const ServingIndex> index = server.snapshot();
  batch_.reserve(opt.max_batch);
  full_rows_.reserve(opt.max_batch);
  batch_users_ = la::Matrix(opt.max_batch, index->dim());
  batch_scores_ = la::Matrix(opt.max_batch, index->num_items());
  scratch_scores_.reserve(index->num_items());
  topk_.reserve(opt.max_k);
  selector_.Reserve(opt.max_k);
  // Quantized scratch, reserved for whichever quant mode needs more (an
  // int4 query splits into two stride-sized halves, which can exceed the
  // int8 buffer at small dims) — so a later Reload onto a differently
  // quantized index never allocates in the request loop.
  const size_t d = index->dim();
  const size_t i8 = la::QuantizedTable::RowStrideFor(la::QuantMode::kInt8, d);
  const size_t i4 =
      2 * la::QuantizedTable::RowStrideFor(la::QuantMode::kInt4, d);
  qquery_.codes.reserve(i8 > i4 ? i8 : i4);
  qacc_.reserve(index->num_items());
  const size_t survivors = opt.rerank_factor * opt.max_k;
  survivors_.reserve(survivors);
  rerank_scores_.reserve(survivors);
  qselector_.Reserve(survivors);
}

Server::Server(std::shared_ptr<const ServingIndex> index,
               ServerOptions options)
    : options_(options), index_(std::move(index)) {
  PUP_CHECK(index_ != nullptr);
  PUP_CHECK(options_.max_batch >= 1);
  PUP_CHECK(options_.max_k >= 1);
  PUP_CHECK(options_.rerank_factor >= 1);
  queue_.reserve(options_.max_batch);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(
        options_.cache_capacity, index_->num_users(), options_.max_k);
  }
  obs::Registry& reg = obs::Registry::Global();
  requests_ = reg.GetCounter("serve/requests");
  batches_ = reg.GetCounter("serve/batches");
  cache_hits_ = reg.GetCounter("serve/cache_hit");
  cache_misses_ = reg.GetCounter("serve/cache_miss");
  occupancy_ = reg.GetHistogram("serve/batch_occupancy");
  batch_timer_ = reg.GetTimer("serve/batch");
}

std::shared_ptr<const ServingIndex> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_;
}

uint64_t Server::generation() const {
  return generation_.load(std::memory_order_relaxed);
}

void Server::Reload(std::shared_ptr<const ServingIndex> index) {
  PUP_CHECK(index != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    index_ = std::move(index);
    // Bump under mu_ so a batch leader's (snapshot, generation) pair is
    // always consistent; readers use the relaxed atomic.
    generation_.fetch_add(1, std::memory_order_relaxed);
  }
  if (cache_ != nullptr) cache_->Invalidate();
}

// PUP_HOT: the serving request loop — no allocation in steady state; the
// only waits are the batching monitor and the serialized batch execution.
void Server::Rank(const Request& req, RequestContext* ctx, Reply* reply) {
  PUP_CHECK_MSG(req.k >= 1 && req.k <= options_.max_k,
                "request k outside [1, max_k]");
  requests_->Add(1);
  reply->cache_hit = false;
  if (cache_ != nullptr && req.scenario == Scenario::kFullRanking) {
    if (cache_->Lookup(req.user, req.k,
                       generation_.load(std::memory_order_relaxed),
                       &reply->items, &reply->scores)) {
      reply->served = Scenario::kFullRanking;
      reply->cache_hit = true;
      cache_hits_->Add(1);
      return;
    }
    cache_misses_->Add(1);
  }

  Slot slot;
  slot.req = &req;
  slot.reply = reply;
  std::unique_lock<std::mutex> lk(mu_);  // NOLINT(pup-hot-transitive): micro-batch rendezvous — one bounded wait buys batched execution (see docs/serving.md).
  // A full forming batch means its leader is about to claim it; wait for
  // the claim rather than overflowing the fixed-capacity queue.
  while (queue_.size() >= options_.max_batch) cv_.wait(lk);  // NOLINT(pup-hot-transitive): micro-batch rendezvous — one bounded wait buys batched execution (see docs/serving.md).
  const bool leader = queue_.empty();
  queue_.push_back(&slot);  // NOLINT(pup-hot-alloc): capacity max_batch.
  if (!leader) {
    if (queue_.size() >= options_.max_batch) cv_.notify_all();
    cv_.wait(lk, [&] { return slot.done; });  // NOLINT(pup-hot-transitive): micro-batch rendezvous — one bounded wait buys batched execution (see docs/serving.md).
    return;
  }
  if (options_.batch_timeout_us > 0 && options_.max_batch > 1) {
    cv_.wait_for(lk, std::chrono::microseconds(options_.batch_timeout_us),  // NOLINT(pup-hot-transitive): micro-batch rendezvous — one bounded wait buys batched execution (see docs/serving.md).
                 [&] { return queue_.size() >= options_.max_batch; });
  }
  // Claim the batch. New arrivals start forming the next one as soon as
  // the lock drops; execution below is serialized on exec_mu_, so under
  // load the next leader collects every request that queues meanwhile.
  // NOLINTNEXTLINE(pup-hot-alloc): <= max_batch pointers, Reserve'd.
  ctx->batch_.assign(queue_.begin(), queue_.end());
  queue_.clear();
  const std::shared_ptr<const ServingIndex> index = index_;
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  lk.unlock();
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> exec(exec_mu_);  // NOLINT(pup-hot-transitive): micro-batch rendezvous — one bounded wait buys batched execution (see docs/serving.md).
    ExecuteBatch(*index, generation, ctx);
  }
  lk.lock();  // NOLINT(pup-hot-transitive): micro-batch rendezvous — one bounded wait buys batched execution (see docs/serving.md).
  for (Slot* s : ctx->batch_) s->done = true;
  lk.unlock();
  cv_.notify_all();
}

// PUP_HOT: scores one claimed micro-batch — one batched GEMM for the
// full-ranking rows, per-request subset/prior scoring for the rest.
void Server::ExecuteBatch(const ServingIndex& index, uint64_t generation,
                          RequestContext* ctx) {
  obs::ScopedTimer span(batch_timer_, "serve/batch");
  batches_->Add(1);
  occupancy_->Observe(ctx->batch_.size());
  const size_t d = index.dim();
  ctx->full_rows_.clear();
  for (size_t i = 0; i < ctx->batch_.size(); ++i) {
    Slot* s = ctx->batch_[i];
    Scenario sc = s->req->scenario;
    // Unknown users cannot be scored from the user table: fall back to
    // the price-level popularity prior (full ranking) or to the prior
    // restricted to the candidate pool (re-rank).
    if (sc == Scenario::kFullRanking && s->req->user >= index.num_users()) {
      sc = Scenario::kColdStart;
    }
    s->served = sc;
    // Quantized indexes take the fastscan + re-rank path per request
    // (the scan is a memory-bound integer pass, not a batched GEMM).
    if (sc == Scenario::kFullRanking && !index.quantized()) {
      // NOLINTNEXTLINE(pup-hot-alloc): <= max_batch entries, Reserve'd.
      ctx->full_rows_.push_back(static_cast<uint32_t>(i));
    }
  }
  if (!ctx->full_rows_.empty()) {
    ctx->batch_users_.ResizeNoZero(ctx->full_rows_.size(), d);
    for (size_t r = 0; r < ctx->full_rows_.size(); ++r) {
      const Request& rq = *ctx->batch_[ctx->full_rows_[r]]->req;
      const float* src = index.user_vecs().Row(rq.user);
      std::copy(src, src + d, ctx->batch_users_.Row(r));
    }
    la::ScoreItemsForUsers(index.item_vecs(), ctx->batch_users_, index.bias(),
                           &ctx->batch_scores_);
    for (size_t r = 0; r < ctx->full_rows_.size(); ++r) {
      Slot* s = ctx->batch_[ctx->full_rows_[r]];
      ServeFullRanking(index, generation, ctx->batch_scores_.Row(r),
                       *s->req, s->reply, ctx);
    }
  }
  for (Slot* s : ctx->batch_) {
    if (s->served == Scenario::kFullRanking && index.quantized()) {
      ServeFullRankingQuantized(index, generation, *s->req, s->reply, ctx);
    } else if (s->served == Scenario::kRerank) {
      ServeSubset(index, *s->req, s->reply, ctx);
    } else if (s->served == Scenario::kColdStart) {
      ServePrior(index, *s->req, s->reply, ctx);
    }
    s->reply->served = s->served;
  }
}

// PUP_HOT: quantized full ranking — int8/int4 fastscan over the code
// table, survivor selection at rerank_factor * k, exact-f32 re-rank of
// the survivors. Every stage is bitwise-deterministic across backends,
// thread counts, and batch schedules: the scan accumulates in exact
// int32, the dequant epilogue is fixed-order scalar math, survivor
// membership comes from the strict (score desc, id asc) selector, and
// the re-rank dot runs in a pinned 16-virtual-lane shape on every ISA.
void Server::ServeFullRankingQuantized(const ServingIndex& index,
                                       uint64_t generation, const Request& req,
                                       Reply* reply, RequestContext* ctx) {
  const size_t n = index.num_items();
  const la::QuantizedTable& qt = index.quant_items();
  const float* user = index.user_vecs().Row(req.user);
  {
    PUP_OBS_SCOPED_TIMER("serve/quant/fastscan");
    ctx->qquery_.Prepare(user, qt);
    // NOLINTNEXTLINE(pup-hot-alloc): <= num_items entries, Reserve'd buffer.
    ctx->scratch_scores_.resize(n);
    // NOLINTNEXTLINE(pup-hot-alloc): <= num_items entries, Reserve'd buffer.
    ctx->qacc_.resize(n);
    la::ScoreItemsQuantized(qt, ctx->qquery_, index.bias(), ctx->qacc_.data(),
                            ctx->scratch_scores_.data());
  }
  PUP_OBS_SCOPED_TIMER("serve/quant/post_scan");
  float* approx = ctx->scratch_scores_.data();
  if (req.exclude != nullptr) {
    for (uint32_t id : *req.exclude) {
      PUP_CHECK_MSG(id < n, "excluded item id out of range");
      approx[id] = kNegInf;
    }
  }
  const size_t budget = options_.rerank_factor * static_cast<size_t>(req.k);
  {
    PUP_OBS_SCOPED_TIMER("serve/quant/select");
    ctx->qselector_.Select(approx, n, budget < n ? budget : n,
                           &ctx->survivors_);
  }
  // Survivor order is membership only; sorting by id makes the final
  // selector's positional tie-break an id tie-break, the same strict
  // (score desc, id asc) order every other serving path emits.
  std::sort(ctx->survivors_.begin(), ctx->survivors_.end());
  // NOLINTNEXTLINE(pup-hot-alloc): <= rerank_factor * max_k, Reserve'd.
  ctx->rerank_scores_.resize(ctx->survivors_.size());
  la::ScoreItemsRerank(index.item_vecs(), user, index.bias(),
                       ctx->survivors_.data(), ctx->survivors_.size(),
                       ctx->rerank_scores_.data());
  // Re-apply the exclusion mask: an excluded id reaches the survivor set
  // only when the unmasked catalog is smaller than the budget, but it
  // must never be served with its true score.
  for (size_t j = 0; j < ctx->survivors_.size(); ++j) {
    if (approx[ctx->survivors_[j]] == kNegInf) {
      ctx->rerank_scores_[j] = kNegInf;
    }
  }
  ctx->selector_.Select(ctx->rerank_scores_.data(), ctx->survivors_.size(),
                        req.k, &ctx->topk_);
  EmitRanked(ctx->rerank_scores_.data(), ctx->topk_, &ctx->survivors_, reply);
  if (cache_ != nullptr) {
    cache_->Insert(req.user, req.k, generation, reply->items, reply->scores);
  }
}

// PUP_HOT: full-catalog ranking for one request; `scores` is the
// request's private row of the batch score matrix, masked in place.
void Server::ServeFullRanking(const ServingIndex& index, uint64_t generation,
                              float* scores, const Request& req, Reply* reply,
                              RequestContext* ctx) {
  const size_t n = index.num_items();
  if (req.exclude != nullptr) {
    for (uint32_t id : *req.exclude) {
      PUP_CHECK_MSG(id < n, "excluded item id out of range");
      scores[id] = kNegInf;
    }
  }
  ctx->selector_.Select(scores, n, req.k, &ctx->topk_);
  EmitRanked(scores, ctx->topk_, nullptr, reply);
  if (cache_ != nullptr) {
    cache_->Insert(req.user, req.k, generation, reply->items, reply->scores);
  }
}

// PUP_HOT: candidate re-rank. The pool must be sorted ascending and
// unique, so selecting by pool position breaks ties exactly like the
// full ranking breaks them by item id — rerank results are the full
// ranking restricted to the pool, bitwise.
void Server::ServeSubset(const ServingIndex& index, const Request& req,
                         Reply* reply, RequestContext* ctx) {
  PUP_CHECK_MSG(req.candidates != nullptr && !req.candidates->empty(),
                "kRerank request without candidates");
  const std::vector<uint32_t>& cand = *req.candidates;
  const size_t n = index.num_items();
  PUP_CHECK_MSG(cand.size() <= n, "candidate pool larger than catalog");
  for (size_t j = 0; j < cand.size(); ++j) {
    PUP_CHECK_MSG(cand[j] < n, "candidate item id out of range");
    PUP_CHECK_MSG(j == 0 || cand[j] > cand[j - 1],
                  "candidates must be sorted ascending and unique");
  }
  // NOLINTNEXTLINE(pup-hot-alloc): <= num_items floats, Reserve'd buffer.
  ctx->scratch_scores_.resize(cand.size());
  if (req.user < index.num_users()) {
    la::ScoreItemsSubset(index.item_vecs(), index.user_vecs().Row(req.user),
                         index.bias(), cand.data(), cand.size(),
                         ctx->scratch_scores_.data());
  } else {
    const std::vector<float>& prior = index.cold_start_prior();
    for (size_t j = 0; j < cand.size(); ++j) {
      ctx->scratch_scores_[j] = prior[cand[j]];
    }
  }
  ctx->selector_.Select(ctx->scratch_scores_.data(), cand.size(), req.k,
                        &ctx->topk_);
  EmitRanked(ctx->scratch_scores_.data(), ctx->topk_, &cand, reply);
}

// PUP_HOT: cold-start fallback — ranks the price-level popularity prior,
// honoring exclusions, through the same selector as every other path.
void Server::ServePrior(const ServingIndex& index, const Request& req,
                        Reply* reply, RequestContext* ctx) {
  const std::vector<float>& prior = index.cold_start_prior();
  // NOLINTNEXTLINE(pup-hot-alloc): <= num_items floats, Reserve'd buffer.
  ctx->scratch_scores_.assign(prior.begin(), prior.end());
  if (req.exclude != nullptr) {
    for (uint32_t id : *req.exclude) {
      PUP_CHECK_MSG(id < prior.size(), "excluded item id out of range");
      ctx->scratch_scores_[id] = kNegInf;
    }
  }
  ctx->selector_.Select(ctx->scratch_scores_.data(), prior.size(), req.k,
                        &ctx->topk_);
  EmitRanked(ctx->scratch_scores_.data(), ctx->topk_, nullptr, reply);
}

}  // namespace pup::serve
