#include "train/early_stopping.h"

#include <limits>

#include "common/check.h"
#include "train/trainer.h"

namespace pup::train {

EarlyStopper::EarlyStopper(std::vector<ag::Tensor> params,
                           std::function<double()> metric_fn,
                           EarlyStoppingOptions options)
    : params_(std::move(params)),
      metric_fn_(std::move(metric_fn)),
      options_(options),
      best_metric_(-std::numeric_limits<double>::infinity()) {
  PUP_CHECK(!params_.empty());
  PUP_CHECK(metric_fn_ != nullptr);
  PUP_CHECK_GT(options_.eval_every, 0);
  PUP_CHECK_GT(options_.patience, 0);
}

std::function<bool(const EpochStats&)> EarlyStopper::MakeCallback() {
  return [this](const EpochStats& stats) {
    if ((stats.epoch + 1) % options_.eval_every != 0) return true;
    ++num_evaluations_;
    double metric = metric_fn_();
    if (metric > best_metric_ + options_.min_delta) {
      best_metric_ = metric;
      best_epoch_ = stats.epoch;
      evals_since_best_ = 0;
      best_snapshot_.clear();
      best_snapshot_.reserve(params_.size());
      for (const ag::Tensor& p : params_) best_snapshot_.push_back(p->value);
    } else {
      ++evals_since_best_;
    }
    return evals_since_best_ < options_.patience;
  };
}

void EarlyStopper::RestoreBest() {
  if (best_snapshot_.empty()) return;
  PUP_CHECK_EQ(best_snapshot_.size(), params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    PUP_CHECK(best_snapshot_[k].SameShape(params_[k]->value));
    params_[k]->value = best_snapshot_[k];
  }
}

}  // namespace pup::train
