// Validation-driven model selection for the BPR training loop.
//
// The paper trains a fixed 200 epochs; at library scale users usually
// want early stopping instead: evaluate a metric on the validation split
// every few epochs, snapshot the best parameters, stop after `patience`
// evaluations without improvement, and restore the best snapshot.
//
// Usage:
//   train::EarlyStopper stopper(model->Parameters(),
//       [&] { return EvaluateRecallOnValid(*model); },
//       {.eval_every = 5, .patience = 3});
//   train::TrainBpr(model, dataset, split.train, options,
//                   stopper.MakeCallback());
//   stopper.RestoreBest();   // Parameters now hold the best epoch.
#pragma once

#include <functional>
#include <vector>

#include "autograd/tensor.h"

namespace pup::train {

/// Early-stopping policy knobs.
struct EarlyStoppingOptions {
  /// Evaluate every N epochs (the first evaluation is at epoch N-1).
  int eval_every = 5;
  /// Stop after this many consecutive non-improving evaluations.
  int patience = 3;
  /// Smallest metric gain that counts as an improvement.
  double min_delta = 0.0;
};

/// Tracks the best validation metric and snapshots parameters at it.
/// Higher metric = better.
class EarlyStopper {
 public:
  EarlyStopper(std::vector<ag::Tensor> params,
               std::function<double()> metric_fn,
               EarlyStoppingOptions options = {});

  /// Adapter for TrainBpr's EpochCallback (returns false to stop).
  std::function<bool(const struct EpochStats&)> MakeCallback();

  /// Copies the best snapshot back into the live parameters. No-op if no
  /// evaluation ever ran.
  void RestoreBest();

  /// Best metric value seen (-inf before the first evaluation).
  double best_metric() const { return best_metric_; }

  /// Epoch index of the best evaluation, or -1.
  int best_epoch() const { return best_epoch_; }

  /// Number of evaluations performed.
  int num_evaluations() const { return num_evaluations_; }

 private:
  std::vector<ag::Tensor> params_;
  std::function<double()> metric_fn_;
  EarlyStoppingOptions options_;
  std::vector<la::Matrix> best_snapshot_;
  double best_metric_;
  int best_epoch_ = -1;
  int evals_since_best_ = 0;
  int num_evaluations_ = 0;
};

}  // namespace pup::train
