// Minibatch BPR training loop (§III-D).
//
// Models expose their per-batch differentiable forward pass through
// BprTrainable; the trainer owns sampling, batching, the Adam optimizer,
// the paper's divide-by-10-twice learning-rate schedule, and L2
// regularization of the embeddings involved in each batch.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autograd/numeric_guard.h"
#include "autograd/optimizer.h"
#include "autograd/tensor.h"
#include "ckpt/checkpoint.h"
#include "ckpt/checkpointable.h"
#include "common/flags.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/sampler.h"

namespace pup::train {

/// Crash-safe checkpointing of a training run (see docs/checkpointing.md).
///
/// Snapshots capture the model's trainable state (via ckpt::Checkpointable
/// when the model implements it, generic parameter sections otherwise),
/// the optimizer moments, the sampler RNG, and the epoch cursor — enough
/// that `train K epochs → kill → resume → N-K epochs` replays the exact
/// losses and metrics of an uninterrupted N-epoch run, at any --threads.
struct CheckpointOptions {
  /// Directory for periodic snapshots (created if missing); empty
  /// disables saving.
  std::string directory;
  /// Snapshot every N completed epochs, plus always after the final
  /// epoch; 0 disables periodic saves.
  int save_every = 0;
  /// Checkpoint file — or directory holding `ckpt-*.pupc` snapshots — to
  /// resume from; empty starts fresh. A corrupt or mismatched candidate
  /// is skipped with a warning in favor of the newest valid one; if none
  /// is valid, training starts from scratch rather than aborting.
  std::string resume_from;
};

/// Reads the standard checkpoint flags — --ckpt-dir DIR, --save-every N,
/// --resume PATH — shared by pup_cli and every example.
CheckpointOptions CheckpointOptionsFromFlags(const Flags& flags);

/// Hyper-parameters of a training run (§V-A3 defaults, scaled down).
struct TrainOptions {
  int epochs = 40;
  size_t batch_size = 1024;
  float learning_rate = 1e-2f;
  /// λ of eq. (4); applied to the L2 terms the model reports per batch,
  /// normalized by batch size. The paper grid-searches this; 3e-2 is the
  /// value that keeps 64-dim embeddings from memorizing the small
  /// benchmark datasets.
  float l2_reg = 3e-2f;
  /// Negatives sampled per positive (paper: 1).
  int negative_rate = 1;
  /// Negative-sampling strategy (docs/sampling.md). kUniform is the
  /// bitwise-golden default; popularity/price draw harder negatives
  /// through an O(1) alias table rebuilt each epoch.
  data::NegSampling neg_sampling = data::NegSampling::kUniform;
  /// Exponent on the weighted-sampling counts (ignored for kUniform).
  double neg_alpha = 0.75;
  uint64_t seed = 7;
  /// Learning rate is divided by 10 when these fractions of the epochs
  /// complete (paper: "reduce the learning rate by a factor of 10 twice").
  std::vector<double> lr_decay_at = {0.5, 0.75};
  /// Recycle tape nodes and backward scratch across steps through a
  /// TapeArena (autograd/arena.h). Bitwise-identical trajectories either
  /// way; off only costs per-step allocations (useful for A/B measurement
  /// and as a fallback).
  bool reuse_tape = true;
  bool verbose = false;
  /// Crash-safe snapshot/resume of this run; disabled by default.
  CheckpointOptions checkpoint;
  /// Scan every step's forward activations and backward gradients for
  /// NaN/Inf (ag::NumericGuard, op-level provenance). The scalar batch
  /// loss is validated every step regardless. Defaults on in Debug
  /// builds, off in Release; --check-numerics overrides either way.
  bool check_numerics = ag::kCheckNumericsDefault;
};

/// Applies the --check-numerics[=0|1] flag to `options` — shared by
/// pup_cli and every example (mirrors CheckpointOptionsFromFlags).
void ApplyCheckNumericsFlag(const Flags& flags, TrainOptions* options);

/// Applies --neg-sampling {uniform,popularity,price} and --neg-alpha to
/// `options`; InvalidArgument on an unknown strategy name.
Status ApplyNegSamplingFlags(const Flags& flags, TrainOptions* options);

/// A model trainable with BPR: builds the differentiable score graph for
/// one (users, positives, negatives) batch.
class BprTrainable {
 public:
  virtual ~BprTrainable() = default;

  /// All trainable parameters (for the optimizer).
  virtual std::vector<ag::Tensor> Parameters() = 0;

  /// Differentiable outputs for one batch.
  struct BatchGraph {
    ag::Tensor pos_scores;  // (B, 1)
    ag::Tensor neg_scores;  // (B, 1)
    /// Tensors whose squared norm is L2-regularized (typically the raw
    /// embeddings gathered for this batch). May be empty.
    std::vector<ag::Tensor> l2_terms;
  };
  virtual BatchGraph ForwardBatch(const std::vector<uint32_t>& users,
                                  const std::vector<uint32_t>& pos_items,
                                  const std::vector<uint32_t>& neg_items,
                                  bool training) = 0;

  /// Differentiable loss for one batch: the BPR data term plus the tensors
  /// to L2-regularize (the trainer adds the penalty).
  struct BatchLossGraph {
    ag::Tensor loss;  // (1, 1) BPR data term.
    std::vector<ag::Tensor> l2_terms;
  };

  /// Builds the batch loss graph. The default composes
  /// ForwardBatch + ag::BprLoss; models whose scores are plain row dots
  /// override it with the fused ag::RowDotSigmoidBpr head (bitwise-equal,
  /// fewer tape nodes and intermediates).
  virtual BatchLossGraph ForwardBatchLoss(const std::vector<uint32_t>& users,
                                          const std::vector<uint32_t>& pos_items,
                                          const std::vector<uint32_t>& neg_items,
                                          bool training);
};

/// Per-epoch telemetry.
struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  double seconds = 0.0;
  /// Learning rate the epoch ran at (after any decay applied on entry).
  float lr = 0.0f;
};

/// Called after each epoch; return false to stop early.
using EpochCallback = std::function<bool(const EpochStats&)>;

/// Where a successful resume left the run.
struct ResumePoint {
  int epochs_completed = 0;
  float lr = 0.0f;
};

/// Applies one checkpoint file to (model, optimizer, sampler) —
/// all-or-nothing. Every section is read and validated into staged
/// locals first (header, fingerprint, model key, epoch cursor, lr,
/// sampler RNG, optimizer state via Optimizer::ValidateState, model
/// sections via the models' transactional LoadState / staged generic
/// parameters); live state is mutated only after the entire file has
/// been accepted, so a rejected checkpoint — truncated, bit-flipped, or
/// from a different architecture — leaves model, optimizer, and sampler
/// bitwise-untouched and the caller free to try the next candidate.
/// `model` must expose the same parameter list the checkpoint was saved
/// from; pass `checkpointable` when the model implements it (the trainer
/// detects this via dynamic_cast). TrainBpr calls this for every resume
/// candidate; it is public so tests can prove the no-mutation contract.
Result<ResumePoint> TryResumeCheckpoint(
    const std::string& path, const ckpt::DatasetFingerprint& fingerprint,
    const std::string& model_key, BprTrainable* model,
    ckpt::Checkpointable* checkpointable, ag::Optimizer* optimizer,
    data::NegativeSampler* sampler, int total_epochs);

/// Runs the full BPR training loop on `train` interactions.
/// Returns per-epoch stats.
std::vector<EpochStats> TrainBpr(BprTrainable* model,
                                 const data::Dataset& dataset,
                                 const std::vector<data::Interaction>& train,
                                 const TrainOptions& options,
                                 const EpochCallback& callback = nullptr);

}  // namespace pup::train
