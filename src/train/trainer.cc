#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <utility>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "ckpt/checkpoint.h"
#include "ckpt/checkpointable.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/registry.h"

namespace pup::train {
namespace {

namespace fs = std::filesystem;

// Snapshot file name for a run that has completed `epochs` epochs;
// zero-padded so lexicographic order is epoch order.
std::string CheckpointFileName(int epochs) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06d.pupc", epochs);
  return buf;
}

bool IsCheckpointFile(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.starts_with("ckpt-") && name.ends_with(".pupc");
}

// Resume candidates, best first: the explicit file (if PATH is a file),
// then every sibling snapshot newest-first — the last-good fallback chain.
std::vector<std::string> ResumeCandidates(const std::string& resume_from) {
  std::vector<std::string> candidates;
  std::error_code ec;
  fs::path dir;
  if (fs::is_directory(resume_from, ec)) {
    dir = resume_from;
  } else {
    candidates.push_back(resume_from);
    dir = fs::path(resume_from).parent_path();
  }
  std::vector<std::string> siblings;
  if (!dir.empty() && fs::is_directory(dir, ec)) {
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file(ec) && IsCheckpointFile(entry.path()) &&
          entry.path().string() != resume_from) {
        siblings.push_back(entry.path().string());
      }
    }
  }
  std::sort(siblings.rbegin(), siblings.rend());
  candidates.insert(candidates.end(), siblings.begin(), siblings.end());
  return candidates;
}

// Writes one training snapshot; `epochs` epochs are complete and `lr` is
// the rate those epochs ended on.
Status SaveTrainerCheckpoint(const ckpt::DatasetFingerprint& fingerprint,
                             const std::string& model_key,
                             BprTrainable* model,
                             const ckpt::Checkpointable* checkpointable,
                             const ag::Optimizer& optimizer,
                             const data::NegativeSampler& sampler, int epochs,
                             float lr, const std::string& path) {
  ckpt::Writer writer(fingerprint);
  writer.AddString("meta/model_key", model_key);
  writer.AddU64("meta/epochs_completed", static_cast<uint64_t>(epochs));
  writer.AddF32("trainer/lr", lr);
  writer.AddRng("sampler/rng", sampler.rng_state());
  // Weighted samplers stamp their strategy so a resume with a different
  // --neg-sampling/--neg-alpha is rejected instead of silently diverging.
  // Uniform runs write no section, keeping their files byte-identical to
  // checkpoints from before weighted sampling existed.
  if (sampler.checkpoint_tag() != 0) {
    writer.AddU64("sampler/tag", sampler.checkpoint_tag());
  }
  PUP_RETURN_NOT_OK(ckpt::SaveOptimizerState(optimizer, &writer));
  if (checkpointable != nullptr) {
    PUP_RETURN_NOT_OK(checkpointable->SaveState(&writer));
  } else {
    std::vector<ag::Tensor> params = model->Parameters();
    writer.AddU64("param/count", params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      writer.AddMatrix("param/" + std::to_string(i), params[i]->value);
    }
  }
  return writer.WriteFile(path);
}

// One minibatch: forward, L2 penalty, numeric sentinels, backward,
// parameter update. Returns the batch loss.
// PUP_HOT: with the arena on and capacities warmed this performs no heap
// allocation in steady state; pup_lint enforces the contract.
float RunBatchStep(BprTrainable* model, const std::vector<uint32_t>& users,
                   const std::vector<uint32_t>& pos,
                   const std::vector<uint32_t>& neg,
                   const TrainOptions& options, ag::Adam* optimizer,
                   ag::NumericGuard* guard) {
  PUP_OBS_SCOPED_TIMER("train/batch_step");
  BprTrainable::BatchLossGraph graph =
      model->ForwardBatchLoss(users, pos, neg, /*training=*/true);
  ag::Tensor loss = std::move(graph.loss);
  if (options.l2_reg > 0.0f && !graph.l2_terms.empty()) {
    loss = ag::FusedL2Penalty(
        loss, graph.l2_terms,
        options.l2_reg / static_cast<float>(users.size()));
  }
  // The 1x1 loss is validated every step (negligible cost); the op-level
  // tape scans run only under --check-numerics.
  loss->value.AssertFinite("batch loss");
  if (options.check_numerics) {
    const ag::NumericFinding finding = guard->CheckForward(loss);
    PUP_CHECK_MSG(!finding.found, finding.Describe().c_str());
  }
  optimizer->ZeroGrad();
  ag::Backward(loss);
  if (options.check_numerics) {
    const ag::NumericFinding finding = guard->CheckBackward(loss);
    PUP_CHECK_MSG(!finding.found, finding.Describe().c_str());
  }
  optimizer->Step();
  return loss->value(0, 0);
}

}  // namespace

Result<ResumePoint> TryResumeCheckpoint(
    const std::string& path, const ckpt::DatasetFingerprint& fingerprint,
    const std::string& model_key, BprTrainable* model,
    ckpt::Checkpointable* checkpointable, ag::Optimizer* optimizer,
    data::NegativeSampler* sampler, int total_epochs) {
  PUP_OBS_COUNT("train/resume_attempts", 1);
  PUP_OBS_SCOPED_TIMER("train/resume");
  // Phase 1 — stage and validate. Everything below is pure reads into
  // locals; any failure returns before live state is touched.
  PUP_ASSIGN_OR_RETURN(ckpt::Reader reader, ckpt::Reader::Open(path));
  PUP_RETURN_NOT_OK(reader.CheckFingerprint(fingerprint));
  PUP_ASSIGN_OR_RETURN(std::string stored_key,
                       reader.GetString("meta/model_key"));
  if (stored_key != model_key) {
    return Status::FailedPrecondition("checkpoint holds a '" + stored_key +
                                      "' model, not '" + model_key + "'");
  }
  ResumePoint point;
  PUP_ASSIGN_OR_RETURN(uint64_t epochs,
                       reader.GetU64("meta/epochs_completed"));
  if (epochs > static_cast<uint64_t>(total_epochs)) {
    return Status::OutOfRange("checkpoint is " + std::to_string(epochs) +
                              " epochs in, past this run's " +
                              std::to_string(total_epochs));
  }
  point.epochs_completed = static_cast<int>(epochs);
  PUP_ASSIGN_OR_RETURN(point.lr, reader.GetF32("trainer/lr"));
  PUP_ASSIGN_OR_RETURN(RngState sampler_rng, reader.GetRng("sampler/rng"));
  uint64_t stored_tag = 0;
  if (reader.Has("sampler/tag")) {
    PUP_ASSIGN_OR_RETURN(stored_tag, reader.GetU64("sampler/tag"));
  }
  if (stored_tag != sampler->checkpoint_tag()) {
    return Status::FailedPrecondition(
        "checkpoint negative-sampling strategy (tag " +
        std::to_string(stored_tag) + ") does not match this run's (tag " +
        std::to_string(sampler->checkpoint_tag()) +
        "); resume with the same --neg-sampling/--neg-alpha");
  }
  // The optimizer sections are staged and pre-validated here, NOT loaded:
  // they are the last sections in the file, and committing the model
  // first would tear the restore when they turn out corrupt — the model
  // would keep the checkpoint weights while training "from scratch".
  PUP_ASSIGN_OR_RETURN(ag::OptimizerState optim_state,
                       ckpt::ReadOptimizerState(reader));
  PUP_RETURN_NOT_OK(optimizer->ValidateState(optim_state));
  std::vector<la::Matrix> staged_params;
  std::vector<ag::Tensor> params;
  if (checkpointable == nullptr) {
    params = model->Parameters();
    PUP_ASSIGN_OR_RETURN(uint64_t count, reader.GetU64("param/count"));
    if (count != params.size()) {
      return Status::FailedPrecondition(
          "checkpoint has " + std::to_string(count) + " parameters, model " +
          std::to_string(params.size()));
    }
    staged_params.reserve(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      PUP_ASSIGN_OR_RETURN(la::Matrix m,
                           reader.GetMatrix("param/" + std::to_string(i)));
      if (!m.SameShape(params[i]->value)) {
        return Status::FailedPrecondition(
            "parameter " + std::to_string(i) + " is " +
            std::to_string(m.rows()) + "x" + std::to_string(m.cols()) +
            ", model expects " + std::to_string(params[i]->value.rows()) +
            "x" + std::to_string(params[i]->value.cols()));
      }
      staged_params.push_back(std::move(m));
    }
  }

  // Phase 2 — commit. From here on nothing can fail: the generic
  // parameters and optimizer state were staged above, and a
  // Checkpointable's LoadState is itself transactional (validates every
  // section before mutating; see ckpt::Checkpointable).
  if (checkpointable != nullptr) {
    PUP_RETURN_NOT_OK(checkpointable->LoadState(reader));
  } else {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = std::move(staged_params[i]);
    }
  }
  Status optim_commit = optimizer->ImportState(optim_state);
  PUP_CHECK_MSG(optim_commit.ok(),
                "optimizer state failed to commit after validation");
  sampler->restore_rng_state(sampler_rng);
  return point;
}

void ApplyCheckNumericsFlag(const Flags& flags, TrainOptions* options) {
  options->check_numerics =
      flags.GetBool("check-numerics", options->check_numerics);
}

Status ApplyNegSamplingFlags(const Flags& flags, TrainOptions* options) {
  const std::string name = flags.GetString(
      "neg-sampling", data::NegSamplingName(options->neg_sampling));
  PUP_ASSIGN_OR_RETURN(options->neg_sampling,
                       data::NegSamplingFromString(name));
  options->neg_alpha = flags.GetDouble("neg-alpha", options->neg_alpha);
  return Status::OK();
}

CheckpointOptions CheckpointOptionsFromFlags(const Flags& flags) {
  CheckpointOptions options;
  options.directory = flags.GetString("ckpt-dir", "");
  options.save_every = static_cast<int>(flags.GetInt("save-every", 0));
  options.resume_from = flags.GetString("resume", "");
  return options;
}

BprTrainable::BatchLossGraph BprTrainable::ForwardBatchLoss(
    const std::vector<uint32_t>& users, const std::vector<uint32_t>& pos_items,
    const std::vector<uint32_t>& neg_items, bool training) {
  BatchGraph batch = ForwardBatch(users, pos_items, neg_items, training);
  BatchLossGraph graph;
  graph.loss = ag::BprLoss(batch.pos_scores, batch.neg_scores);
  graph.l2_terms = std::move(batch.l2_terms);
  return graph;
}

std::vector<EpochStats> TrainBpr(BprTrainable* model,
                                 const data::Dataset& dataset,
                                 const std::vector<data::Interaction>& train,
                                 const TrainOptions& options,
                                 const EpochCallback& callback) {
  PUP_CHECK(model != nullptr);
  PUP_CHECK_GT(options.epochs, 0);
  PUP_CHECK_GT(options.batch_size, 0u);
  PUP_CHECK_MSG(!train.empty(), "training split is empty");

  std::unique_ptr<data::NegativeSampler> sampler = data::MakeNegativeSampler(
      dataset, train, options.seed, options.neg_sampling, options.neg_alpha);
  ag::Adam optimizer(model->Parameters(),
                     {.learning_rate = options.learning_rate});

  // Epochs (0-based) at which the learning rate is divided by 10.
  // Distinct fractions can floor to the same epoch on short runs (e.g.
  // {0.5, 0.55} of 10 epochs); each decay epoch must divide the rate
  // exactly once, so duplicates are dropped.
  std::vector<int> decay_epochs;
  for (double frac : options.lr_decay_at) {
    decay_epochs.push_back(
        static_cast<int>(std::floor(options.epochs * frac)));
  }
  std::sort(decay_epochs.begin(), decay_epochs.end());
  decay_epochs.erase(std::unique(decay_epochs.begin(), decay_epochs.end()),
                     decay_epochs.end());

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  float lr = options.learning_rate;

  // Checkpointing: models that implement ckpt::Checkpointable snapshot
  // their full state (including auxiliary RNG streams); others fall back
  // to generic parameter sections.
  const CheckpointOptions& ck = options.checkpoint;
  const bool saving = !ck.directory.empty() && ck.save_every > 0;
  auto* checkpointable = dynamic_cast<ckpt::Checkpointable*>(model);
  const std::string model_key =
      checkpointable != nullptr ? checkpointable->checkpoint_key() : "generic";
  ckpt::DatasetFingerprint fingerprint;
  if (saving || !ck.resume_from.empty()) {
    fingerprint = ckpt::DatasetFingerprint::Of(dataset);
  }

  int start_epoch = 0;
  if (!ck.resume_from.empty()) {
    for (const std::string& candidate : ResumeCandidates(ck.resume_from)) {
      Result<ResumePoint> point = TryResumeCheckpoint(
          candidate, fingerprint, model_key, model, checkpointable,
          &optimizer, sampler.get(), options.epochs);
      if (!point.ok()) {
        PUP_OBS_COUNT("train/resume_rejected", 1);
        PUP_LOG_WARNING << "skipping checkpoint " << candidate << ": "
                        << point.status().message();
        continue;
      }
      start_epoch = point->epochs_completed;
      lr = point->lr;
      if (options.verbose) {
        PUP_LOG_INFO << "resumed from " << candidate << " at epoch "
                     << start_epoch;
      }
      break;
    }
    if (start_epoch == 0) {
      PUP_LOG_WARNING << "no valid checkpoint under '" << ck.resume_from
                      << "'; training from scratch";
    }
  }

  // Buffers reused across every batch of every epoch: the epoch's triple
  // list and the per-batch index columns. Together with the tape arena
  // this makes steady-state steps allocation-free.
  std::vector<data::BprTriple> triples;
  std::vector<uint32_t> users, pos, neg;
  users.reserve(options.batch_size);
  pos.reserve(options.batch_size);
  neg.reserve(options.batch_size);
  ag::TapeArena arena;
  // Reusable tape scanner for --check-numerics: its traversal buffer
  // persists across steps, so clean scans allocate nothing.
  ag::NumericGuard guard;

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    PUP_OBS_SCOPED_TIMER("train/epoch");
    for (int de : decay_epochs) {
      if (epoch == de && epoch > 0) {
        lr *= 0.1f;
        optimizer.SetLearningRate(lr);
      }
    }

    Stopwatch timer;
    {
      PUP_OBS_SCOPED_TIMER("train/sample_epoch");
      sampler->SampleEpoch(options.negative_rate, &triples);
    }
    PUP_OBS_COUNT("train/triples", triples.size());
    double loss_sum = 0.0;
    size_t num_batches = 0;

    for (size_t start = 0; start < triples.size();
         start += options.batch_size) {
      size_t end = std::min(start + options.batch_size, triples.size());
      users.clear();
      pos.clear();
      neg.clear();
      for (size_t k = start; k < end; ++k) {
        users.push_back(triples[k].user);
        pos.push_back(triples[k].pos_item);
        neg.push_back(triples[k].neg_item);
      }

      {
        // All tape nodes and backward scratch built inside this scope draw
        // from the arena; the handles must die before arena.Reset().
        std::optional<ag::TapeArena::Scope> scope;
        if (options.reuse_tape) scope.emplace(&arena);
        loss_sum +=
            RunBatchStep(model, users, pos, neg, options, &optimizer, &guard);
        ++num_batches;
      }
      if (options.reuse_tape) arena.Reset();
    }

    // Epoch boundary: drop pooled backward scratch so an idle model does
    // not pin peak workspace memory. Node blocks stay for the next epoch.
    if (options.reuse_tape) arena.Trim();

    PUP_OBS_COUNT("train/batches", num_batches);
    PUP_OBS_COUNT("train/epochs", 1);

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = num_batches > 0 ? loss_sum / num_batches : 0.0;
    stats.seconds = timer.Seconds();
    stats.lr = lr;
    history.push_back(stats);
    if (options.verbose) {
      PUP_LOG_INFO << "epoch " << epoch << " loss=" << stats.mean_loss
                   << " lr=" << lr << " (" << stats.seconds << "s)";
    }

    if (saving &&
        ((epoch + 1) % ck.save_every == 0 || epoch + 1 == options.epochs)) {
      std::error_code ec;
      fs::create_directories(ck.directory, ec);
      const std::string path =
          (fs::path(ck.directory) / CheckpointFileName(epoch + 1)).string();
      PUP_OBS_SCOPED_TIMER("train/checkpoint_save");
      Status st =
          SaveTrainerCheckpoint(fingerprint, model_key, model, checkpointable,
                                optimizer, *sampler, epoch + 1, lr, path);
      if (!st.ok()) {
        PUP_LOG_WARNING << "checkpoint save failed (" << path
                        << "): " << st.message();
      } else if (options.verbose) {
        PUP_LOG_INFO << "saved checkpoint " << path;
      }
    }

    if (callback && !callback(stats)) break;
  }
  return history;
}

}  // namespace pup::train
