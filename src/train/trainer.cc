#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace pup::train {

BprTrainable::BatchLossGraph BprTrainable::ForwardBatchLoss(
    const std::vector<uint32_t>& users, const std::vector<uint32_t>& pos_items,
    const std::vector<uint32_t>& neg_items, bool training) {
  BatchGraph batch = ForwardBatch(users, pos_items, neg_items, training);
  BatchLossGraph graph;
  graph.loss = ag::BprLoss(batch.pos_scores, batch.neg_scores);
  graph.l2_terms = std::move(batch.l2_terms);
  return graph;
}

std::vector<EpochStats> TrainBpr(BprTrainable* model,
                                 const data::Dataset& dataset,
                                 const std::vector<data::Interaction>& train,
                                 const TrainOptions& options,
                                 const EpochCallback& callback) {
  PUP_CHECK(model != nullptr);
  PUP_CHECK_GT(options.epochs, 0);
  PUP_CHECK_GT(options.batch_size, 0u);
  PUP_CHECK_MSG(!train.empty(), "training split is empty");

  data::NegativeSampler sampler(dataset.num_users, dataset.num_items, train,
                                options.seed);
  ag::Adam optimizer(model->Parameters(),
                     {.learning_rate = options.learning_rate});

  // Epochs (0-based) at which the learning rate is divided by 10.
  std::vector<int> decay_epochs;
  for (double frac : options.lr_decay_at) {
    decay_epochs.push_back(
        static_cast<int>(std::floor(options.epochs * frac)));
  }

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  float lr = options.learning_rate;

  // Buffers reused across every batch of every epoch: the epoch's triple
  // list and the per-batch index columns. Together with the tape arena
  // this makes steady-state steps allocation-free.
  std::vector<data::BprTriple> triples;
  std::vector<uint32_t> users, pos, neg;
  users.reserve(options.batch_size);
  pos.reserve(options.batch_size);
  neg.reserve(options.batch_size);
  ag::TapeArena arena;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int de : decay_epochs) {
      if (epoch == de && epoch > 0) {
        lr *= 0.1f;
        optimizer.SetLearningRate(lr);
      }
    }

    Stopwatch timer;
    sampler.SampleEpoch(options.negative_rate, &triples);
    double loss_sum = 0.0;
    size_t num_batches = 0;

    for (size_t start = 0; start < triples.size();
         start += options.batch_size) {
      size_t end = std::min(start + options.batch_size, triples.size());
      users.clear();
      pos.clear();
      neg.clear();
      for (size_t k = start; k < end; ++k) {
        users.push_back(triples[k].user);
        pos.push_back(triples[k].pos_item);
        neg.push_back(triples[k].neg_item);
      }

      {
        // All tape nodes and backward scratch built inside this scope draw
        // from the arena; the handles must die before arena.Reset().
        std::optional<ag::TapeArena::Scope> scope;
        if (options.reuse_tape) scope.emplace(&arena);

        BprTrainable::BatchLossGraph graph =
            model->ForwardBatchLoss(users, pos, neg, /*training=*/true);
        ag::Tensor loss = std::move(graph.loss);
        if (options.l2_reg > 0.0f && !graph.l2_terms.empty()) {
          loss = ag::FusedL2Penalty(
              loss, graph.l2_terms,
              options.l2_reg / static_cast<float>(users.size()));
        }

        loss_sum += loss->value(0, 0);
        ++num_batches;
        optimizer.ZeroGrad();
        ag::Backward(loss);
        optimizer.Step();
      }
      if (options.reuse_tape) arena.Reset();
    }

    // Epoch boundary: drop pooled backward scratch so an idle model does
    // not pin peak workspace memory. Node blocks stay for the next epoch.
    if (options.reuse_tape) arena.Trim();

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = num_batches > 0 ? loss_sum / num_batches : 0.0;
    stats.seconds = timer.Seconds();
    history.push_back(stats);
    if (options.verbose) {
      PUP_LOG_INFO << "epoch " << epoch << " loss=" << stats.mean_loss
                   << " lr=" << lr << " (" << stats.seconds << "s)";
    }
    if (callback && !callback(stats)) break;
  }
  return history;
}

}  // namespace pup::train
