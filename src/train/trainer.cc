#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace pup::train {

std::vector<EpochStats> TrainBpr(BprTrainable* model,
                                 const data::Dataset& dataset,
                                 const std::vector<data::Interaction>& train,
                                 const TrainOptions& options,
                                 const EpochCallback& callback) {
  PUP_CHECK(model != nullptr);
  PUP_CHECK_GT(options.epochs, 0);
  PUP_CHECK_GT(options.batch_size, 0u);
  PUP_CHECK_MSG(!train.empty(), "training split is empty");

  data::NegativeSampler sampler(dataset.num_users, dataset.num_items, train,
                                options.seed);
  ag::Adam optimizer(model->Parameters(),
                     {.learning_rate = options.learning_rate});

  // Epochs (0-based) at which the learning rate is divided by 10.
  std::vector<int> decay_epochs;
  for (double frac : options.lr_decay_at) {
    decay_epochs.push_back(
        static_cast<int>(std::floor(options.epochs * frac)));
  }

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  float lr = options.learning_rate;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int de : decay_epochs) {
      if (epoch == de && epoch > 0) {
        lr *= 0.1f;
        optimizer.SetLearningRate(lr);
      }
    }

    Stopwatch timer;
    auto triples = sampler.SampleEpoch(options.negative_rate);
    double loss_sum = 0.0;
    size_t num_batches = 0;

    for (size_t start = 0; start < triples.size();
         start += options.batch_size) {
      size_t end = std::min(start + options.batch_size, triples.size());
      std::vector<uint32_t> users, pos, neg;
      users.reserve(end - start);
      pos.reserve(end - start);
      neg.reserve(end - start);
      for (size_t k = start; k < end; ++k) {
        users.push_back(triples[k].user);
        pos.push_back(triples[k].pos_item);
        neg.push_back(triples[k].neg_item);
      }

      auto batch = model->ForwardBatch(users, pos, neg, /*training=*/true);
      ag::Tensor loss = ag::BprLoss(batch.pos_scores, batch.neg_scores);
      if (options.l2_reg > 0.0f && !batch.l2_terms.empty()) {
        std::vector<ag::Tensor> penalties;
        penalties.reserve(batch.l2_terms.size());
        for (const ag::Tensor& t : batch.l2_terms) {
          penalties.push_back(ag::SquaredNorm(t));
        }
        ag::Tensor reg = penalties.size() == 1 ? penalties[0]
                                               : ag::AddScalars(penalties);
        loss = ag::AddScalars(
            {loss, ag::Scale(reg, options.l2_reg /
                                      static_cast<float>(users.size()))});
      }

      loss_sum += loss->value(0, 0);
      ++num_batches;
      optimizer.ZeroGrad();
      ag::Backward(loss);
      optimizer.Step();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = num_batches > 0 ? loss_sum / num_batches : 0.0;
    stats.seconds = timer.Seconds();
    history.push_back(stats);
    if (options.verbose) {
      PUP_LOG_INFO << "epoch " << epoch << " loss=" << stats.mean_loss
                   << " lr=" << lr << " (" << stats.seconds << "s)";
    }
    if (callback && !callback(stats)) break;
  }
  return history;
}

}  // namespace pup::train
