#include "eval/cwtp.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace pup::eval {

CwtpTable ComputeCwtp(const data::Dataset& dataset,
                      const std::vector<data::Interaction>& interactions) {
  PUP_CHECK_MSG(!dataset.item_price_level.empty(),
                "quantize prices before computing CWTP");
  CwtpTable table(dataset.num_users,
                  std::vector<std::optional<uint32_t>>(
                      dataset.num_categories));
  for (const data::Interaction& x : interactions) {
    uint32_t c = dataset.item_category[x.item];
    uint32_t level = dataset.item_price_level[x.item];
    auto& cell = table[x.user][c];
    if (!cell.has_value() || level > *cell) cell = level;
  }
  return table;
}

double CwtpEntropy(const std::vector<std::optional<uint32_t>>& user_cwtp) {
  std::map<uint32_t, size_t> counts;
  size_t total = 0;
  for (const auto& v : user_cwtp) {
    if (v.has_value()) {
      counts[*v]++;
      ++total;
    }
  }
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (const auto& [level, n] : counts) {
    double p = static_cast<double>(n) / static_cast<double>(total);
    entropy -= p * std::log(p);
  }
  return entropy;
}

std::vector<double> CwtpEntropies(const CwtpTable& table) {
  std::vector<double> out;
  out.reserve(table.size());
  for (const auto& row : table) out.push_back(CwtpEntropy(row));
  return out;
}

namespace {

size_t NumCategoriesInteracted(
    const std::vector<std::optional<uint32_t>>& row) {
  size_t n = 0;
  for (const auto& v : row) n += v.has_value() ? 1 : 0;
  return n;
}

}  // namespace

UserGroups GroupUsersByEntropy(const CwtpTable& table, double threshold,
                               size_t min_categories) {
  UserGroups groups;
  for (uint32_t u = 0; u < table.size(); ++u) {
    if (NumCategoriesInteracted(table[u]) < min_categories) continue;
    if (CwtpEntropy(table[u]) <= threshold) {
      groups.consistent.push_back(u);
    } else {
      groups.inconsistent.push_back(u);
    }
  }
  return groups;
}

double MedianEntropy(const CwtpTable& table, size_t min_categories) {
  std::vector<double> values;
  for (const auto& row : table) {
    if (NumCategoriesInteracted(row) >= min_categories) {
      values.push_back(CwtpEntropy(row));
    }
  }
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

std::vector<double> PriceCategoryHeatmap(
    const data::Dataset& dataset,
    const std::vector<data::Interaction>& interactions, uint32_t user) {
  PUP_CHECK_MSG(!dataset.item_price_level.empty(),
                "quantize prices before building the heatmap");
  std::vector<double> cells(dataset.num_categories * dataset.num_price_levels,
                            0.0);
  for (const data::Interaction& x : interactions) {
    if (x.user != user) continue;
    uint32_t c = dataset.item_category[x.item];
    uint32_t p = dataset.item_price_level[x.item];
    cells[static_cast<size_t>(c) * dataset.num_price_levels + p] += 1.0;
  }
  return cells;
}

}  // namespace pup::eval
