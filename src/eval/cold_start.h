// Cold-start evaluation protocols CIR and UCIR (§V-F, after Chen et al.
// SIGIR'14).
//
// A user's *unexplored* categories are those appearing in her test items
// but not in her training items. Test positives are filtered to items of
// unexplored categories; then
//   CIR:  the candidate pool is every item of the user's test-positive
//         unexplored categories;
//   UCIR: the candidate pool is every item outside the user's
//         train-positive categories.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace pup::eval {

/// Which cold-start candidate pool to build.
enum class ColdStartProtocol {
  kCir,
  kUcir,
};

/// Per-user candidate pools and filtered test positives for one protocol.
/// Users without any unexplored-category test item have empty entries and
/// are skipped by the evaluator.
struct ColdStartTask {
  std::vector<std::vector<uint32_t>> candidates;  // Sorted item ids.
  std::vector<std::vector<uint32_t>> test_items;  // Sorted item ids.
  /// Number of users with a non-empty task.
  size_t num_active_users = 0;
};

/// Builds the CIR or UCIR task from a train/test partition.
ColdStartTask BuildColdStartTask(
    const data::Dataset& dataset,
    const std::vector<data::Interaction>& train,
    const std::vector<data::Interaction>& test, ColdStartProtocol protocol);

}  // namespace pup::eval
