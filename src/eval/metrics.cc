#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"
#include "eval/topk.h"
#include "obs/registry.h"

namespace pup::eval {
namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

struct Accumulator {
  double recall_sum = 0.0;
  double ndcg_sum = 0.0;
};

// Per-chunk selection scratch: the bounded-heap selector replaced the
// historical iota + partial_sort over the whole catalog (O(n log k) and
// allocation-free per user instead of an n-entry index build per cutoff);
// eval_test pins the bitwise ordering parity, tie-break included.
struct TopKScratch {
  TopKSelector selector;
  std::vector<uint32_t> top;
};

// Core per-user update shared by both evaluation modes. `scores` already
// has non-candidates masked to -inf.
void AccumulateUser(const std::vector<float>& scores,
                    const std::vector<uint32_t>& test, int k,
                    TopKScratch* scratch, Accumulator* acc) {
  scratch->selector.Select(scores.data(), scores.size(),
                           static_cast<size_t>(k), &scratch->top);
  const std::vector<uint32_t>& top = scratch->top;
  int hits = 0;
  double dcg = 0.0;
  for (size_t pos = 0; pos < top.size(); ++pos) {
    if (scores[top[pos]] == kNegInf) break;  // Only masked items remain.
    if (std::binary_search(test.begin(), test.end(), top[pos])) {
      ++hits;
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  acc->recall_sum += static_cast<double>(hits) / test.size();
  double idcg = IdealDcg(test.size(), k);
  acc->ndcg_sum += idcg > 0.0 ? dcg / idcg : 0.0;
}

// Users per ParallelFor chunk. Fixed (not a function of the pool size)
// so the partial-sum combine order — and therefore the metrics — are
// identical for every thread count > 1; a single-thread pool coalesces
// everything into chunk 0, reproducing the historical serial
// accumulation bitwise.
constexpr size_t kUsersPerChunk = 16;

// Per-chunk metric partial sums plus that chunk's reusable score buffers.
struct ChunkAccumulator {
  std::map<int, Accumulator> acc;
  size_t evaluated = 0;
};

// Combines per-chunk partials in chunk order into the final result.
EvalResult CombineChunks(const std::vector<ChunkAccumulator>& partial,
                         const std::vector<int>& cutoffs) {
  size_t evaluated = 0;
  std::map<int, Accumulator> acc;
  for (int k : cutoffs) acc[k] = {};
  for (const ChunkAccumulator& ca : partial) {
    evaluated += ca.evaluated;
    for (int k : cutoffs) {
      auto it = ca.acc.find(k);
      if (it == ca.acc.end()) continue;
      acc[k].recall_sum += it->second.recall_sum;
      acc[k].ndcg_sum += it->second.ndcg_sum;
    }
  }
  EvalResult result;
  result.num_users_evaluated = evaluated;
  for (int k : cutoffs) {
    TopKMetrics m;
    if (evaluated > 0) {
      m.recall = acc[k].recall_sum / static_cast<double>(evaluated);
      m.ndcg = acc[k].ndcg_sum / static_cast<double>(evaluated);
    }
    result.at[k] = m;
  }
  return result;
}

}  // namespace

double Dcg(const std::vector<int>& relevance) {
  double dcg = 0.0;
  for (size_t pos = 0; pos < relevance.size(); ++pos) {
    if (relevance[pos] != 0) {
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  return dcg;
}

double IdealDcg(size_t num_relevant, int k) {
  size_t n = std::min<size_t>(num_relevant, static_cast<size_t>(k));
  double idcg = 0.0;
  for (size_t pos = 0; pos < n; ++pos) {
    idcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
  }
  return idcg;
}

EvalResult EvaluateRanking(
    const Scorer& scorer, size_t num_users, size_t num_items,
    const std::vector<std::vector<uint32_t>>& exclude_items,
    const std::vector<std::vector<uint32_t>>& test_items,
    const std::vector<int>& cutoffs) {
  PUP_CHECK_EQ(exclude_items.size(), num_users);
  PUP_CHECK_EQ(test_items.size(), num_users);
  PUP_OBS_SCOPED_TIMER("eval/full_ranking");
  const size_t num_chunks =
      (num_users + kUsersPerChunk - 1) / kUsersPerChunk;
  std::vector<ChunkAccumulator> partial(num_chunks);
  // Each chunk of users is scored independently with its own score
  // buffer; Scorer::ScoreItems is const and must be thread-safe.
  ParallelFor(0, num_users, kUsersPerChunk, [&](size_t lo, size_t hi) {
    PUP_OBS_SCOPED_TIMER("eval/chunk");
    ChunkAccumulator* ca = &partial[lo / kUsersPerChunk];
    std::vector<float> scores;
    TopKScratch scratch;
    for (size_t u = lo; u < hi; ++u) {
      const auto& test = test_items[u];
      if (test.empty()) continue;
      ++ca->evaluated;
      scorer.ScoreItems(static_cast<uint32_t>(u), &scores);
      PUP_CHECK_EQ(scores.size(), num_items);
      for (uint32_t item : exclude_items[u]) scores[item] = kNegInf;
      for (int k : cutoffs) {
        AccumulateUser(scores, test, k, &scratch, &ca->acc[k]);
      }
    }
    PUP_OBS_COUNT("eval/users_evaluated", ca->evaluated);
  });
  return CombineChunks(partial, cutoffs);
}

EvalResult EvaluateRankingWithCandidates(
    const Scorer& scorer,
    const std::vector<std::vector<uint32_t>>& candidates,
    const std::vector<std::vector<uint32_t>>& test_items,
    const std::vector<int>& cutoffs) {
  PUP_CHECK_EQ(candidates.size(), test_items.size());
  PUP_OBS_SCOPED_TIMER("eval/candidate_ranking");
  const size_t num_users = candidates.size();
  const size_t num_chunks =
      (num_users + kUsersPerChunk - 1) / kUsersPerChunk;
  std::vector<ChunkAccumulator> partial(num_chunks);
  ParallelFor(0, num_users, kUsersPerChunk, [&](size_t lo, size_t hi) {
    PUP_OBS_SCOPED_TIMER("eval/chunk");
    ChunkAccumulator* ca = &partial[lo / kUsersPerChunk];
    std::vector<float> scores;
    std::vector<float> masked;
    TopKScratch scratch;
    for (size_t u = lo; u < hi; ++u) {
      const auto& test = test_items[u];
      if (test.empty() || candidates[u].empty()) continue;
      ++ca->evaluated;
      scorer.ScoreItems(static_cast<uint32_t>(u), &scores);
      // Candidate lists come from callers (cold-start pools, external
      // input), so each user's list is validated for real before any
      // score is written into the mask: a PUP_DCHECK vanishes in Release
      // and an out-of-range id would be a silent OOB read/write.
      for (uint32_t item : candidates[u]) {
        PUP_CHECK_MSG(item < scores.size(),
                      "candidate item id out of range for scorer");
      }
      masked.assign(scores.size(), kNegInf);
      for (uint32_t item : candidates[u]) {
        masked[item] = scores[item];
      }
      for (int k : cutoffs) {
        AccumulateUser(masked, test, k, &scratch, &ca->acc[k]);
      }
    }
    PUP_OBS_COUNT("eval/users_evaluated", ca->evaluated);
  });
  return CombineChunks(partial, cutoffs);
}

}  // namespace pup::eval
