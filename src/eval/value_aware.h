// Value-aware recommendation (paper §VII future work: "how to utilize
// PUP to maximize the revenue … extends price-aware recommendation to
// value-aware recommendation").
//
// Treating exp(s_i / T) as an unnormalized purchase propensity, the
// expected value of showing item i is propensity × price_i^β; in log
// space that is a simple additive adjustment
//   s'_i = s_i + β·T·ln(price_i),
// so a trained price-aware model can be steered along the
// accuracy-revenue frontier at serving time with one scalar β.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/metrics.h"

namespace pup::eval {

/// Wraps any Scorer with the log-linear expected-value adjustment.
class ValueAwareScorer : public Scorer {
 public:
  /// `prices` are raw item prices (> 0); `beta` = 0 reproduces the base
  /// ranking, larger beta trades accuracy for revenue.
  ValueAwareScorer(const Scorer& base, std::vector<float> prices,
                   float beta);

  void ScoreItems(uint32_t user, std::vector<float>* out) const override;

 private:
  const Scorer& base_;
  std::vector<float> log_price_;
  float beta_;
};

/// Expected revenue at cutoff K: the mean over evaluated users of the
/// summed prices of *hit* items (test positives in the top-K). Pure
/// accuracy metrics count a hit as 1; this weights it by what it earns.
double RevenueAtK(const Scorer& scorer, size_t num_users, size_t num_items,
                  const std::vector<std::vector<uint32_t>>& exclude_items,
                  const std::vector<std::vector<uint32_t>>& test_items,
                  const std::vector<float>& prices, int k);

}  // namespace pup::eval
