#include "eval/cold_start.h"

#include <algorithm>

#include "common/check.h"

namespace pup::eval {

ColdStartTask BuildColdStartTask(const data::Dataset& dataset,
                                 const std::vector<data::Interaction>& train,
                                 const std::vector<data::Interaction>& test,
                                 ColdStartProtocol protocol) {
  const size_t num_users = dataset.num_users;
  const size_t num_cats = dataset.num_categories;

  // Category sets per user, train and test.
  std::vector<std::vector<bool>> train_cats(num_users,
                                            std::vector<bool>(num_cats));
  for (const data::Interaction& x : train) {
    train_cats[x.user][dataset.item_category[x.item]] = true;
  }

  // Items per category (sorted by construction: ascending item id).
  std::vector<std::vector<uint32_t>> cat_items(num_cats);
  for (uint32_t i = 0; i < dataset.num_items; ++i) {
    cat_items[dataset.item_category[i]].push_back(i);
  }

  ColdStartTask task;
  task.candidates.resize(num_users);
  task.test_items.resize(num_users);

  // Unexplored-category test positives per user.
  std::vector<std::vector<bool>> positive_unexplored_cats(
      num_users, std::vector<bool>(num_cats));
  for (const data::Interaction& x : test) {
    uint32_t c = dataset.item_category[x.item];
    if (train_cats[x.user][c]) continue;  // Category already explored.
    task.test_items[x.user].push_back(x.item);
    positive_unexplored_cats[x.user][c] = true;
  }

  for (uint32_t u = 0; u < num_users; ++u) {
    auto& tests = task.test_items[u];
    if (tests.empty()) continue;
    std::sort(tests.begin(), tests.end());
    tests.erase(std::unique(tests.begin(), tests.end()), tests.end());

    auto& pool = task.candidates[u];
    switch (protocol) {
      case ColdStartProtocol::kCir:
        // All items of the test-positive unexplored categories.
        for (size_t c = 0; c < num_cats; ++c) {
          if (!positive_unexplored_cats[u][c]) continue;
          pool.insert(pool.end(), cat_items[c].begin(), cat_items[c].end());
        }
        break;
      case ColdStartProtocol::kUcir:
        // All items outside the user's train-positive categories.
        for (size_t c = 0; c < num_cats; ++c) {
          if (train_cats[u][c]) continue;
          pool.insert(pool.end(), cat_items[c].begin(), cat_items[c].end());
        }
        break;
    }
    std::sort(pool.begin(), pool.end());
    PUP_DCHECK(std::includes(pool.begin(), pool.end(), tests.begin(),
                             tests.end()));
    ++task.num_active_users;
  }
  return task;
}

}  // namespace pup::eval
