// Top-K ranking evaluation: Recall@K and NDCG@K (§V-A1).
//
// Following the protocol of the paper (and He et al., NCF): for every user
// with at least one test item, all items the user has not interacted with
// in training form the candidate set; metrics are averaged over evaluated
// users. A per-user candidate-pool variant supports the cold-start CIR /
// UCIR protocols (§V-F).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace pup::eval {

/// Anything that can score every item for a user. Recommenders implement
/// this; evaluators consume it.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Writes a score for each item (higher = better) into `out`, resized to
  /// the item count. The ranking evaluators score user blocks in parallel,
  /// so implementations must be safe to call concurrently from multiple
  /// threads (pure const reads of model state).
  virtual void ScoreItems(uint32_t user, std::vector<float>* out) const = 0;
};

/// Recall and NDCG at one cutoff.
struct TopKMetrics {
  double recall = 0.0;
  double ndcg = 0.0;
};

/// Metrics at each requested cutoff, plus how many users were averaged.
struct EvalResult {
  std::map<int, TopKMetrics> at;
  size_t num_users_evaluated = 0;

  TopKMetrics At(int k) const {
    auto it = at.find(k);
    return it == at.end() ? TopKMetrics{} : it->second;
  }
};

/// Full-ranking evaluation.
///
/// `exclude_items[u]` (typically the user's train items, sorted) are
/// removed from u's candidate set; `test_items[u]` (sorted) are the
/// positives. Users with empty test sets are skipped.
EvalResult EvaluateRanking(
    const Scorer& scorer, size_t num_users, size_t num_items,
    const std::vector<std::vector<uint32_t>>& exclude_items,
    const std::vector<std::vector<uint32_t>>& test_items,
    const std::vector<int>& cutoffs);

/// Restricted-candidate evaluation (CIR/UCIR): user u is ranked only over
/// `candidates[u]`; users with an empty candidate or test set are skipped.
/// Test items must be contained in the candidate pool to count as hits.
EvalResult EvaluateRankingWithCandidates(
    const Scorer& scorer,
    const std::vector<std::vector<uint32_t>>& candidates,
    const std::vector<std::vector<uint32_t>>& test_items,
    const std::vector<int>& cutoffs);

/// DCG of a 0/1 relevance list (1-indexed positions, 1/log2(pos+1) gains).
double Dcg(const std::vector<int>& relevance);

/// Ideal DCG for `num_relevant` relevant documents at cutoff k.
double IdealDcg(size_t num_relevant, int k);

}  // namespace pup::eval
