#include "eval/value_aware.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace pup::eval {

ValueAwareScorer::ValueAwareScorer(const Scorer& base,
                                   std::vector<float> prices, float beta)
    : base_(base), beta_(beta) {
  log_price_.reserve(prices.size());
  for (float p : prices) {
    PUP_CHECK_MSG(p > 0.0f, "prices must be positive");
    log_price_.push_back(std::log(p));
  }
}

void ValueAwareScorer::ScoreItems(uint32_t user,
                                  std::vector<float>* out) const {
  base_.ScoreItems(user, out);
  PUP_CHECK_EQ(out->size(), log_price_.size());
  for (size_t i = 0; i < out->size(); ++i) {
    (*out)[i] += beta_ * log_price_[i];
  }
}

double RevenueAtK(const Scorer& scorer, size_t num_users, size_t num_items,
                  const std::vector<std::vector<uint32_t>>& exclude_items,
                  const std::vector<std::vector<uint32_t>>& test_items,
                  const std::vector<float>& prices, int k) {
  PUP_CHECK_EQ(prices.size(), num_items);
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  double total = 0.0;
  size_t evaluated = 0;
  std::vector<float> scores;
  std::vector<uint32_t> idx(num_items);
  for (uint32_t u = 0; u < num_users; ++u) {
    const auto& test = test_items[u];
    if (test.empty()) continue;
    ++evaluated;
    scorer.ScoreItems(u, &scores);
    PUP_CHECK_EQ(scores.size(), num_items);
    for (uint32_t item : exclude_items[u]) scores[item] = kNegInf;
    std::iota(idx.begin(), idx.end(), 0u);
    size_t kk = std::min<size_t>(static_cast<size_t>(k), idx.size());
    std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                      [&](uint32_t a, uint32_t b) {
                        if (scores[a] != scores[b]) {
                          return scores[a] > scores[b];
                        }
                        return a < b;
                      });
    for (size_t pos = 0; pos < kk; ++pos) {
      if (scores[idx[pos]] == kNegInf) break;
      if (std::binary_search(test.begin(), test.end(), idx[pos])) {
        total += prices[idx[pos]];
      }
    }
  }
  return evaluated > 0 ? total / static_cast<double>(evaluated) : 0.0;
}

}  // namespace pup::eval
