// Category willing-to-pay (CWTP) analysis (§II-A, Table VI).
//
// CWTP(u, c) = the highest price level user u has paid in category c.
// The entropy of a user's CWTP values across her categories measures how
// *inconsistent* her price sensitivity is: 0 when every category shares
// one level, ln(C_u) when all differ (natural log, matching Fig 1's
// [0, ~3] range).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/dataset.h"

namespace pup::eval {

/// Per-user CWTP table: cwtp[u][c] = max paid price level of u in c, or
/// nullopt when u never purchased in c.
using CwtpTable = std::vector<std::vector<std::optional<uint32_t>>>;

/// Computes CWTP from a set of interactions. Item price levels must be
/// filled (dataset.item_price_level).
CwtpTable ComputeCwtp(const data::Dataset& dataset,
                      const std::vector<data::Interaction>& interactions);

/// Shannon entropy (nats) of the empirical distribution of u's CWTP
/// values over her interacted categories. Users with no interactions get
/// entropy 0.
double CwtpEntropy(const std::vector<std::optional<uint32_t>>& user_cwtp);

/// Entropy for every user.
std::vector<double> CwtpEntropies(const CwtpTable& table);

/// Splits users into consistent (entropy <= threshold) and inconsistent
/// groups. Users with fewer than `min_categories` interacted categories
/// are placed in neither (their entropy is trivially small).
struct UserGroups {
  std::vector<uint32_t> consistent;
  std::vector<uint32_t> inconsistent;
};
UserGroups GroupUsersByEntropy(const CwtpTable& table, double threshold,
                               size_t min_categories = 2);

/// Median entropy over users with >= min_categories categories — the
/// default group threshold.
double MedianEntropy(const CwtpTable& table, size_t min_categories = 2);

/// Purchase-count heatmap for one user: `cells[c * num_levels + p]` counts
/// u's interactions with category c at price level p (Fig 2).
std::vector<double> PriceCategoryHeatmap(
    const data::Dataset& dataset,
    const std::vector<data::Interaction>& interactions, uint32_t user);

}  // namespace pup::eval
