#include "eval/topk.h"

#include <algorithm>

namespace pup::eval {
namespace {

/// The one ordering rule of the library: a ranks ahead of b iff it has
/// the higher score, or the same score and the smaller index.
struct Better {
  const float* scores;
  bool operator()(uint32_t a, uint32_t b) const {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  }
};

}  // namespace

void TopKSelector::Reserve(size_t k) { heap_.reserve(k); }

// PUP_HOT: runs once per request in the serving engine and once per
// (user, cutoff) in ranking eval; allocation-free within Reserve'd k.
void TopKSelector::Select(const float* scores, size_t n, size_t k,
                          std::vector<uint32_t>* out) {
  const Better better{scores};
  const size_t kk = std::min(k, n);
  heap_.clear();
  // With comparator `better` as "less", the heap front is the max under
  // it — i.e. the *worst* of the kept k — so each candidate needs one
  // comparison against the front and only displaces it when it wins.
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = static_cast<uint32_t>(i);
    if (heap_.size() < kk) {
      heap_.push_back(id);  // NOLINT(pup-hot-alloc): within Reserve'd k.
      std::push_heap(heap_.begin(), heap_.end(), better);
    } else if (kk > 0 && better(id, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), better);
      heap_.back() = id;
      std::push_heap(heap_.begin(), heap_.end(), better);
    }
  }
  // NOLINTNEXTLINE(pup-hot-alloc): copies <= k ids into a reserved buffer.
  out->assign(heap_.begin(), heap_.end());
  // `better` is a strict total order (ties split by index), so sorting
  // the k survivors reproduces the full-sort prefix exactly.
  std::sort(out->begin(), out->end(), better);
}

}  // namespace pup::eval
