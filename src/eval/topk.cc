#include "eval/topk.h"

#include <algorithm>

namespace pup::eval {
namespace {

/// The one ordering rule of the library: a ranks ahead of b iff it has
/// the higher score, or the same score and the smaller index.
struct Better {
  const float* scores;
  bool operator()(uint32_t a, uint32_t b) const {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  }
};

}  // namespace

void TopKSelector::Reserve(size_t k) { heap_.reserve(k); }

// PUP_HOT: runs once per request in the serving engine and once per
// (user, cutoff) in ranking eval; allocation-free within Reserve'd k.
void TopKSelector::Select(const float* scores, size_t n, size_t k,
                          std::vector<uint32_t>* out) {
  const Better better{scores};
  const size_t kk = std::min(k, n);
  heap_.clear();
  if (kk == 0) {
    out->clear();
    return;
  }
  // With comparator `better` as "less", the heap front is the max under
  // it — i.e. the *worst* of the kept k — so each candidate needs one
  // comparison against the front and only displaces it when it wins.
  for (size_t i = 0; i < kk; ++i) {
    heap_.push_back(static_cast<uint32_t>(i));  // NOLINT(pup-hot-alloc, pup-hot-transitive): <= k into reserved heap_.
    std::push_heap(heap_.begin(), heap_.end(), better);
  }
  // Steady state: almost every candidate loses to the kept k, so the
  // hot path is ONE predictable scalar compare against the cached
  // front score — no heap-front indirection, no tie-break branch. Only
  // candidates at or above the threshold (ties included, so the strict
  // (score desc, id asc) order is preserved exactly; a NaN score also
  // fails the fast reject and falls through to the exact comparator,
  // keeping behaviour identical to the pre-threshold code on any input)
  // reach the exact heap update.
  float front_score = scores[heap_.front()];
  for (size_t i = kk; i < n; ++i) {
    if (scores[i] < front_score) continue;
    const uint32_t id = static_cast<uint32_t>(i);
    if (!better(id, heap_.front())) continue;
    std::pop_heap(heap_.begin(), heap_.end(), better);
    heap_.back() = id;
    std::push_heap(heap_.begin(), heap_.end(), better);
    front_score = scores[heap_.front()];
  }
  // NOLINTNEXTLINE(pup-hot-alloc): copies <= k ids into a reserved buffer.
  out->assign(heap_.begin(), heap_.end());
  // `better` is a strict total order (ties split by index), so sorting
  // the k survivors reproduces the full-sort prefix exactly.
  std::sort(out->begin(), out->end(), better);
}

double OverlapRecall(const std::vector<uint32_t>& exact,
                     const std::vector<uint32_t>& approx) {
  if (exact.empty()) return 1.0;
  std::vector<uint32_t> e(exact);
  std::vector<uint32_t> a(approx);
  std::sort(e.begin(), e.end());
  std::sort(a.begin(), a.end());
  size_t hits = 0;
  size_t j = 0;
  for (uint32_t id : e) {
    while (j < a.size() && a[j] < id) ++j;
    if (j < a.size() && a[j] == id) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(e.size());
}

}  // namespace pup::eval
