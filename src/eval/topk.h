// Bounded top-K selection shared by offline eval and online serving.
//
// Both layers must produce the *same* ranking for the same scores: the
// eval harness defines the ground truth the serving engine is contractually
// bitwise-identical to (docs/serving.md). Centralizing the selection — and
// its tie-break rule — in one class is what makes that contract checkable
// rather than aspirational.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pup::eval {

/// Selects the indices of the k best scores without sorting the full
/// catalog: a bounded min-heap of the k best seen so far (O(n log k),
/// allocation-free after Reserve), then an exact sort of the <= k
/// survivors. Ordering rule: score descending, ties broken by smaller
/// index — a strict total order, so the result is unique and matches the
/// historical full partial_sort bitwise, element for element.
///
/// Not thread-safe; give each worker its own selector (they are two
/// pointers and a vector).
class TopKSelector {
 public:
  /// Pre-sizes the internal heap so later Select calls up to capacity k
  /// never allocate — required before use inside PUP_HOT request loops.
  void Reserve(size_t k);

  /// Writes the indices of the min(k, n) best of scores[0..n) into `out`
  /// (ordered best-first by the rule above). `out` is resized; callers on
  /// zero-alloc paths must have reserved it to k.
  void Select(const float* scores, size_t n, size_t k,
              std::vector<uint32_t>* out);

 private:
  std::vector<uint32_t> heap_;
};

/// Fraction of `exact` ids also present in `approx` (set overlap, order
/// ignored): the recall@K comparator for the quantized serving path —
/// quantized top-K vs the exact f32 top-K of the same index
/// (docs/quantization.md). Returns 1.0 when `exact` is empty. Inputs
/// need not be sorted; offline use only (allocates).
double OverlapRecall(const std::vector<uint32_t>& exact,
                     const std::vector<uint32_t>& approx);

}  // namespace pup::eval
